"""The closed-loop autotuner: database, policy, auto dispatch, wiring.

The contracts under test, in the order the ISSUE states them:

* the calibration table round-trips losslessly and survives restart;
* a fingerprint change invalidates it with a declared reason;
* a cold/corrupt table degrades to the static heuristics with a typed
  reason on SolveArtifacts — never an exception on the solve path;
* ``backend="auto"`` dispatches to the measured winner and records the
  decision;
* the planner, sharded backend, bench payload, and serving layer all
  consult (or surface) the same table.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.plr.planner import plan_execution
from repro.plr.solver import PLRSolver
from repro.tune import (
    DB_VERSION,
    CalibrationDatabase,
    CalibrationEntry,
    TuningPolicy,
    default_db_path,
    n_bucket,
    run_tuning,
    signature_class,
)
from repro.tune.fingerprint import (
    fingerprint_digest,
    fingerprint_mismatches,
    machine_fingerprint,
)

pytestmark = pytest.mark.tune

FIB = "(1: 2, -1)"


def make_entry(**overrides) -> CalibrationEntry:
    base = dict(
        sig_class="higher_order_prefix_sum:2:int",
        bucket=65536,
        dtype="int32",
        backend="single",
        workers=1,
        wall_s=0.00123,
        values_per_thread=3,
        repeat=3,
    )
    base.update(overrides)
    return CalibrationEntry(**base)


def write_table(path, entries, fingerprint=None) -> CalibrationDatabase:
    db = CalibrationDatabase(path=path)
    if fingerprint is not None:
        db.fingerprint = fingerprint
    for entry in entries:
        db.record(entry)
    db.save()
    return db


# ----------------------------------------------------------------------
# The database: round-trip, invalidation, degradation


class TestCalibrationDatabase:
    def test_round_trip_is_lossless(self, tmp_path):
        path = tmp_path / "t.json"
        entries = [
            make_entry(wall_s=1 / 3, backend="single"),
            make_entry(wall_s=0.1234567890123456789, backend="native"),
            make_entry(backend="process", workers=7, values_per_thread=None),
        ]
        write_table(path, entries)
        loaded = CalibrationDatabase.load(path)
        assert loaded.status == "ok"
        assert loaded.entries == {e.key: e for e in entries}
        # Survives a second save/load cycle bit-exactly (restart twice).
        loaded.save()
        again = CalibrationDatabase.load(path)
        assert again.entries == loaded.entries
        assert again.fingerprint == machine_fingerprint()

    def test_missing_table_loads_cold_with_reason(self, tmp_path):
        db = CalibrationDatabase.load(tmp_path / "absent.json")
        assert db.status == "cold"
        assert not db.entries
        assert "plr tune" in db.reason

    def test_garbage_loads_corrupt_not_raise(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{not json at all")
        db = CalibrationDatabase.load(path)
        assert db.status == "corrupt" and not db.entries

    def test_wrong_shape_loads_corrupt(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert CalibrationDatabase.load(path).status == "corrupt"
        path.write_text(
            json.dumps(
                {
                    "version": DB_VERSION,
                    "fingerprint": machine_fingerprint(),
                    "entries": [{"bogus": True}],
                }
            )
        )
        assert CalibrationDatabase.load(path).status == "corrupt"

    def test_version_mismatch_declared(self, tmp_path):
        path = tmp_path / "t.json"
        write_table(path, [make_entry()])
        payload = json.loads(path.read_text())
        payload["version"] = DB_VERSION + 41
        path.write_text(json.dumps(payload))
        db = CalibrationDatabase.load(path)
        assert db.status == "version-mismatch"
        assert not db.entries
        assert str(DB_VERSION) in db.reason

    def test_fingerprint_change_invalidates(self, tmp_path):
        path = tmp_path / "t.json"
        write_table(path, [make_entry()])
        payload = json.loads(path.read_text())
        payload["fingerprint"]["cpu_count"] = 4096
        path.write_text(json.dumps(payload))
        db = CalibrationDatabase.load(path)
        assert db.status == "fingerprint-mismatch"
        assert not db.entries  # stale advice dropped at load, not per lookup
        assert "cpu_count" in db.reason

    def test_save_is_atomic_publication(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "t.json"
        write_table(path, [make_entry()])
        # No temp droppings next to the published file.
        assert [p.name for p in path.parent.iterdir()] == ["t.json"]

    def test_best_picks_minimum_wall(self, tmp_path):
        db = CalibrationDatabase(path=tmp_path / "t.json")
        db.record(make_entry(backend="single", wall_s=2.0))
        db.record(make_entry(backend="native", wall_s=0.5))
        db.record(make_entry(backend="process", workers=2, wall_s=1.0))
        best = db.best("higher_order_prefix_sum:2:int", 65536, "int32")
        assert best.backend == "native"

    def test_n_bucket_is_next_power_of_two(self):
        assert n_bucket(1) == 1
        assert n_bucket(1024) == 1024
        assert n_bucket(1025) == 2048
        assert n_bucket(100000) == 131072
        with pytest.raises(ValueError):
            n_bucket(0)

    def test_signature_class_keys(self):
        assert signature_class("(1: 1)") == "prefix_sum:1:int"
        assert signature_class("(0.2: 0.8)") == "iir_filter:1:float"
        assert signature_class(FIB) == "higher_order_prefix_sum:2:int"
        # Class, not coefficients, is the key: same-shape signatures share it.
        assert signature_class("(0.5: 0.5)") == signature_class("(0.2: 0.8)")

    def test_default_path_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("PLR_TUNE_DB", str(tmp_path / "custom.json"))
        assert default_db_path() == tmp_path / "custom.json"
        monkeypatch.delenv("PLR_TUNE_DB")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_db_path() == tmp_path / "xdg" / "plr" / "tuning.json"


# ----------------------------------------------------------------------
# Fingerprinting


class TestFingerprint:
    def test_fields_present_and_digest_stable(self):
        fp = machine_fingerprint()
        assert set(fp) >= {"cpu_count", "platform", "machine", "python", "numpy"}
        assert fingerprint_digest(fp) == fingerprint_digest(machine_fingerprint())

    def test_mismatches_name_both_values(self):
        fp = machine_fingerprint()
        other = dict(fp, numpy="0.0.1")
        (line,) = fingerprint_mismatches(other, fp)
        assert "numpy" in line and "0.0.1" in line

    def test_missing_stored_field_is_tolerated(self):
        # Schema growth: an old table without a newer field still loads.
        fp = machine_fingerprint()
        stored = {k: v for k, v in fp.items() if k != "compiler"}
        assert fingerprint_mismatches(stored, fp) == ()


# ----------------------------------------------------------------------
# The policy: measured / interpolated / static, never an exception


class TestTuningPolicy:
    def seeded_policy(self, tmp_path, entries) -> TuningPolicy:
        path = tmp_path / "seeded.json"
        write_table(path, entries)
        return TuningPolicy(path=path)

    def test_cold_table_gives_static_with_reason(self, tmp_path):
        policy = TuningPolicy(path=tmp_path / "absent.json")
        decision = policy.decide(FIB, 1000, np.int32)
        assert decision.source == "static"
        assert decision.backend in ("single", "native")
        assert "plr tune" in decision.reason

    def test_measured_bucket_wins(self, tmp_path):
        policy = self.seeded_policy(
            tmp_path,
            [
                make_entry(backend="single", wall_s=3.0),
                make_entry(backend="process", workers=5, wall_s=0.1),
            ],
        )
        decision = policy.decide(FIB, 65536, np.int32)
        assert decision.source == "measured"
        assert decision.backend == "process"
        assert decision.workers == 5  # the measured pool size rides along

    def test_interpolation_uses_nearest_log2_bucket(self, tmp_path):
        policy = self.seeded_policy(
            tmp_path,
            [
                make_entry(bucket=4096, backend="process", workers=2, wall_s=0.1),
                make_entry(bucket=4096, backend="single", wall_s=3.0),
                make_entry(bucket=1 << 20, backend="single", wall_s=0.1),
                make_entry(bucket=1 << 20, backend="process", workers=2, wall_s=3.0),
            ],
        )
        near_small = policy.decide(FIB, 8192, np.int32)
        near_large = policy.decide(FIB, 1 << 19, np.int32)
        assert near_small.source == near_large.source == "interpolated"
        assert near_small.backend == "process"
        assert near_large.backend == "single"

    def test_unmeasured_class_falls_back_static(self, tmp_path):
        policy = self.seeded_policy(tmp_path, [make_entry()])
        decision = policy.decide("(0.2: 0.8)", 65536, np.float32)
        assert decision.source == "static"
        assert "no measurements" in decision.reason

    def test_native_entries_filtered_without_compiler(self, tmp_path, monkeypatch):
        policy = self.seeded_policy(
            tmp_path,
            [
                make_entry(backend="native", wall_s=0.1),
                make_entry(backend="single", wall_s=2.0),
            ],
        )
        monkeypatch.setattr(TuningPolicy, "_native_available", lambda self: False)
        decision = policy.decide(FIB, 65536, np.int32)
        assert decision.backend == "single"  # the winner it can actually run

    def test_disable_env_forces_static(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PLR_TUNE_DISABLE", "1")
        policy = self.seeded_policy(tmp_path, [make_entry(backend="native")])
        decision = policy.decide(FIB, 65536, np.int32)
        assert decision.source == "static"
        assert "PLR_TUNE_DISABLE" in decision.reason

    def test_garbage_signature_never_raises(self, tmp_path):
        policy = TuningPolicy(path=tmp_path / "absent.json")
        decision = policy.decide("not a signature", 100, np.int32)
        assert decision.source == "static"
        assert "tuning lookup failed" in decision.reason

    def test_recommend_workers_from_nearest_bucket(self, tmp_path):
        policy = self.seeded_policy(
            tmp_path,
            [make_entry(backend="process", workers=3, wall_s=0.1)],
        )
        assert policy.recommend_workers(50000) == 3
        assert TuningPolicy(path=tmp_path / "absent.json").recommend_workers(50000) is None

    def test_describe_carries_database_health(self, tmp_path):
        policy = TuningPolicy(path=tmp_path / "absent.json")
        block = policy.describe()
        assert block["database"]["status"] == "cold"
        assert "enabled" in block and "decisions" in block

    def test_reload_picks_up_retuning(self, tmp_path):
        path = tmp_path / "t.json"
        policy = TuningPolicy(path=path)
        assert policy.decide(FIB, 65536, np.int32).source == "static"
        write_table(path, [make_entry(backend="process", workers=2, wall_s=0.1)])
        policy.reload()
        assert policy.decide(FIB, 65536, np.int32).source == "measured"


# ----------------------------------------------------------------------
# backend="auto" on the solve path


class TestAutoBackend:
    def fib_input(self, n: int) -> np.ndarray:
        return np.random.default_rng(0).integers(-9, 9, size=n).astype(np.int32)

    def seed_default_table(self, entries) -> None:
        """Write entries into the path the default policy reads."""
        write_table(default_db_path(), entries)

    def test_auto_dispatches_to_measured_winner(self):
        n = 4096
        self.seed_default_table(
            [
                make_entry(bucket=n, backend="process", workers=1, wall_s=0.1),
                make_entry(bucket=n, backend="single", wall_s=3.0),
            ]
        )
        values = self.fib_input(n)
        solver = PLRSolver(FIB, backend="auto")
        out, artifacts = solver.solve_with_artifacts(values)
        assert np.array_equal(
            out, serial_full(values, Recurrence.parse(FIB).signature)
        )
        assert artifacts.backend == "process"
        assert artifacts.tuning.source == "measured"

    def test_cold_table_solves_via_static_with_typed_reason(self):
        values = self.fib_input(600)
        out, artifacts = PLRSolver(FIB, backend="auto").solve_with_artifacts(values)
        assert np.array_equal(
            out, serial_full(values, Recurrence.parse(FIB).signature)
        )
        assert artifacts.backend in ("single", "native")
        assert artifacts.tuning.source == "static"
        assert "plr tune" in artifacts.tuning.reason

    def test_corrupt_table_never_raises_on_solve(self):
        default_db_path().parent.mkdir(parents=True, exist_ok=True)
        default_db_path().write_text("]]garbage[[")
        values = self.fib_input(600)
        out, artifacts = PLRSolver(FIB, backend="auto").solve_with_artifacts(values)
        assert np.array_equal(
            out, serial_full(values, Recurrence.parse(FIB).signature)
        )
        assert artifacts.tuning.source == "static"
        assert "unreadable" in artifacts.tuning.reason

    def test_fixed_backends_record_no_decision(self):
        _, artifacts = PLRSolver(FIB).solve_with_artifacts(self.fib_input(100))
        assert artifacts.tuning is None and artifacts.backend == "single"

    def test_batch_solver_accepts_auto(self):
        n = 512
        self.seed_default_table(
            [make_entry(bucket=n, backend="single", wall_s=0.1)]
        )
        from repro.batch.solver import BatchSolver

        batch = np.stack([self.fib_input(n), self.fib_input(n)])
        out = BatchSolver(FIB, backend="auto").solve(batch)
        expected = serial_full(batch[0], Recurrence.parse(FIB).signature)
        assert np.array_equal(out[0], expected)

    def test_planner_consults_measured_values_per_thread(self):
        n = 65536
        heuristic = plan_execution(Recurrence.parse(FIB).signature, n, policy=None)
        assert heuristic.values_per_thread != 1
        self.seed_default_table(
            [make_entry(bucket=n, backend="single", wall_s=0.1, values_per_thread=1)]
        )
        tuned = plan_execution(Recurrence.parse(FIB).signature, n)
        assert tuned.values_per_thread == 1
        # policy=None is the explicit off-switch (what the tuner uses).
        untouched = plan_execution(Recurrence.parse(FIB).signature, n, policy=None)
        assert untouched.values_per_thread == heuristic.values_per_thread

    def test_sharded_workers_follow_recommendation(self):
        from repro.parallel.backend import _tuned_workers

        self.seed_default_table(
            [make_entry(bucket=65536, backend="process", workers=1, wall_s=0.1)]
        )
        assert _tuned_workers(65536) == 1
        # Cold table: no recommendation, machine default applies.
        default_db_path().unlink()
        from repro.tune.policy import reset_default_policy

        reset_default_policy()
        assert _tuned_workers(65536) is None


# ----------------------------------------------------------------------
# The tuner itself


class TestRunTuning:
    def test_quick_sweep_records_and_persists(self, tmp_path):
        path = tmp_path / "t.json"
        db, points = run_tuning(
            path=path, signatures=("(1: 1)",), sizes=(1024,), quick=True
        )
        assert db.status == "ok"
        assert any(p.backend == "single" and p.recorded for p in points)
        # Unrunnable backends are skipped with a note, never recorded.
        for point in points:
            assert point.recorded or point.note
        # The written table steers a fresh policy.
        decision = TuningPolicy(path=path).decide("(1: 1)", 1024, np.int32)
        assert decision.source == "measured"

    def test_sweep_overwrites_foreign_table(self, tmp_path):
        path = tmp_path / "t.json"
        write_table(path, [make_entry()])
        payload = json.loads(path.read_text())
        payload["fingerprint"]["numpy"] = "0.0.1"
        path.write_text(json.dumps(payload))
        db, _ = run_tuning(
            path=path, signatures=("(1: 1)",), sizes=(1024,), quick=True
        )
        assert db.status == "ok"
        assert CalibrationDatabase.load(path).status == "ok"


# ----------------------------------------------------------------------
# Wiring: bench payload and serving surface


class TestWiring:
    def test_bench_payload_carries_fingerprint_and_row_workers(self):
        from repro.cli import _bench_payload

        payload = _bench_payload(
            signature="(1: 1)", n=2048, dtype=None, workers=None, repeat=1, seed=0
        )
        assert payload["workers"] is None  # requested, not resolved
        assert payload["fingerprint"] == machine_fingerprint()
        by_backend = {row["backend"]: row for row in payload["results"]}
        assert by_backend["serial"]["workers"] == 1
        assert by_backend["process"]["workers"] >= 1

    def test_serve_config_accepts_auto(self):
        from repro.serve import ServeConfig

        assert ServeConfig(backend="auto").backend == "auto"
        with pytest.raises(ValueError):
            ServeConfig(backend="turbo")

    def test_metrics_reply_has_tuning_block(self):
        from repro.serve import PLRServer, ServeConfig

        server = PLRServer(ServeConfig())
        reply = server._metrics_reply(1)
        tuning = reply["serving"]["tuning"]
        assert tuning["database"]["status"] in (
            "ok",
            "cold",
            "corrupt",
            "version-mismatch",
            "fingerprint-mismatch",
        )
