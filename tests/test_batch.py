"""The batched execution engine: grouping, equivalence, isolation.

The invariant everything here pins: a request routed through
``repro.batch`` produces what a dedicated per-request
:class:`~repro.plr.solver.PLRSolver` would have produced — exactly for
integer dtypes (wrap-around arithmetic is chunking-invariant), and
within the library's float tolerance otherwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchEngine,
    BatchPlanner,
    BatchRequest,
    BatchSolver,
    execute_batch,
)
from repro.core.errors import NumericalError
from repro.core.validation import assert_valid
from repro.plr.solver import PLRSolver, clear_factor_cache, factor_cache_stats
from repro.resilience.solver import FallbackPolicy
from tests.conftest import make_values


def per_request(signature, values, dtype=None):
    return PLRSolver(signature).solve(np.asarray(values), dtype=dtype)


class TestBatchSolverEquivalence:
    def test_all_table1_rows_match_per_request(self, table1_recurrence):
        batch = np.stack(
            [make_values(table1_recurrence, 3000, seed=s) for s in range(6)]
        )
        out = BatchSolver(table1_recurrence).solve(batch)
        solver = PLRSolver(table1_recurrence)
        for row in range(batch.shape[0]):
            expected = solver.solve(batch[row])
            if np.issubdtype(out.dtype, np.integer):
                assert np.array_equal(out[row], expected)
            else:
                assert_valid(out[row], expected, context=f"row {row}")

    def test_integer_rows_are_bit_exact(self, rng):
        batch = rng.integers(-100, 100, size=(16, 2500)).astype(np.int32)
        out = BatchSolver("(1: 2, -1)").solve(batch)
        solver = PLRSolver("(1: 2, -1)")
        assert out.dtype == np.int32
        for row in range(16):
            assert np.array_equal(out[row], solver.solve(batch[row]))

    def test_single_chunk_floats_are_bit_exact(self, rng):
        # Within one chunk there is no carry spine, so the batched pass
        # runs the identical arithmetic as the per-request solver.
        batch = rng.standard_normal((8, 900)).astype(np.float32)
        out = BatchSolver("(1: 0.9)").solve(batch)
        solver = PLRSolver("(1: 0.9)")
        for row in range(8):
            assert np.array_equal(out[row], solver.solve(batch[row]))

    def test_no_per_request_python_loop(self, rng, monkeypatch):
        # The vectorized pass must never fall back to row-at-a-time
        # solving: solving any 1D sequence during a batch solve fails.
        import repro.plr.solver as solver_mod

        def forbid(self, values, plan=None, dtype=None):  # pragma: no cover
            raise AssertionError("batched path called the per-request solver")

        monkeypatch.setattr(solver_mod.PLRSolver, "solve", forbid)
        batch = rng.integers(-9, 9, size=(4, 300)).astype(np.int32)
        out = BatchSolver("(1: 1)").solve(batch)
        assert np.array_equal(out, np.cumsum(batch, axis=1, dtype=np.int32))

    def test_empty_batch_and_empty_rows(self):
        solver = BatchSolver("(1: 1)")
        assert solver.solve(np.zeros((0, 10), dtype=np.int32)).shape == (0, 10)
        assert solver.solve(np.zeros((3, 0), dtype=np.int32)).shape == (3, 0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2D"):
            BatchSolver("(1: 1)").solve(np.arange(5))

    def test_lossy_integer_coefficients_raise_typed(self):
        with pytest.raises(NumericalError, match="fractional"):
            BatchSolver("(1: 0.5)").solve(
                np.ones((2, 8), dtype=np.int32), dtype=np.int32
            )


class TestBatchPlanner:
    def test_groups_by_signature_dtype_and_bucket(self):
        planner = BatchPlanner(min_bucket=64)
        requests = [
            BatchRequest("(1: 1)", np.arange(10, dtype=np.int32)),
            BatchRequest("(1: 1)", np.arange(50, dtype=np.int32)),
            BatchRequest("(1: 1)", np.arange(100, dtype=np.int32)),
            BatchRequest("(1: 2, -1)", np.arange(10, dtype=np.int32)),
            BatchRequest("(1: 1)", np.arange(10, dtype=np.float32)),
        ]
        groups = planner.plan(requests)
        # (1:1)/int32/64 holds two requests; the 100-long request lands
        # in the 128 bucket; the other signature and the float dtype
        # each get their own group.
        assert len(groups) == 4
        sizes = sorted(g.batch_size for g in groups)
        assert sizes == [1, 1, 1, 2]
        by_bucket = {g.bucket for g in groups}
        assert by_bucket == {64, 128}

    def test_bucket_rounds_to_power_of_two(self):
        planner = BatchPlanner(min_bucket=64)
        assert planner.bucket_for(1) == 64
        assert planner.bucket_for(64) == 64
        assert planner.bucket_for(65) == 128
        assert planner.bucket_for(1000) == 1024

    def test_padding_accounting_and_stacking(self):
        planner = BatchPlanner(min_bucket=8)
        requests = [
            BatchRequest("(1: 1)", np.arange(1, 6, dtype=np.int32)),
            BatchRequest("(1: 1)", np.arange(1, 8, dtype=np.int32)),
        ]
        (group,) = planner.plan(requests)
        assert group.bucket == 8
        assert group.padding == (8 - 5) + (8 - 7)
        stacked = group.stacked()
        assert stacked.shape == (2, 8)
        assert np.array_equal(stacked[0], [1, 2, 3, 4, 5, 0, 0, 0])
        assert np.array_equal(stacked[1], [1, 2, 3, 4, 5, 6, 7, 0])

    def test_max_batch_splits_in_order(self):
        planner = BatchPlanner(min_bucket=8, max_batch=2)
        requests = [
            BatchRequest("(1: 1)", np.full(4, i, dtype=np.int32)) for i in range(5)
        ]
        groups = planner.plan(requests)
        assert [g.batch_size for g in groups] == [2, 2, 1]
        assert [g.indices for g in groups] == [[0, 1], [2, 3], [4]]

    def test_skips_empty_requests(self):
        planner = BatchPlanner()
        groups = planner.plan(
            [BatchRequest("(1: 1)", np.zeros(0, dtype=np.int32))]
        )
        assert groups == []

    def test_request_resolves_paper_dtype(self):
        ints = np.arange(3, dtype=np.int32)
        assert BatchRequest("(1: 1)", ints).dtype == np.int32
        assert BatchRequest("(0.2: 0.8)", ints).dtype == np.float32

    def test_request_rejects_2d_values(self):
        with pytest.raises(ValueError, match="1D"):
            BatchRequest("(1: 1)", np.zeros((2, 3)))


class TestBatchEngine:
    def test_mixed_queue_matches_per_request(self, rng):
        specs = [
            ("(1: 1)", rng.integers(-50, 50, size=200).astype(np.int32)),
            ("(1: 2, -1)", rng.integers(-50, 50, size=150).astype(np.int32)),
            ("(0.2: 0.8)", rng.standard_normal(90).astype(np.float32)),
            ("(1: 1)", rng.integers(-50, 50, size=40).astype(np.int32)),
            ("(0.2: 0.8)", rng.standard_normal(90).astype(np.float32)),
        ]
        requests = [BatchRequest(s, v, tag=i) for i, (s, v) in enumerate(specs)]
        outcomes = execute_batch(requests)
        assert [o.tag for o in outcomes] == [0, 1, 2, 3, 4]
        for outcome, (signature, values) in zip(outcomes, specs):
            assert outcome.ok
            expected = per_request(signature, values)
            if np.issubdtype(expected.dtype, np.integer):
                assert np.array_equal(outcome.output, expected)
            else:
                assert_valid(outcome.output, expected)

    def test_empty_request_short_circuits(self):
        outcomes = execute_batch(
            [BatchRequest("(1: 1)", np.zeros(0, dtype=np.int32), tag="e")]
        )
        (outcome,) = outcomes
        assert outcome.ok and outcome.engine == "empty"
        assert outcome.output.size == 0 and outcome.output.dtype == np.int32

    def test_failing_request_degrades_alone(self, rng):
        # One poisoned request (int dtype, fractional coefficient) rides
        # with two healthy ones; only it leaves the batched path.
        healthy = rng.integers(-5, 5, size=30).astype(np.int32)
        requests = [
            BatchRequest("(1: 1)", healthy, tag="h1"),
            BatchRequest("(1: 0.5)", np.arange(1, 9, dtype=np.int32),
                         dtype=np.int32, tag="poison"),
            BatchRequest("(1: 1)", healthy, tag="h2"),
        ]
        engine = BatchEngine()
        outcomes = {o.tag: o for o in engine.execute(requests)}
        assert outcomes["h1"].engine == "batch" and outcomes["h1"].ok
        assert outcomes["h2"].engine == "batch" and outcomes["h2"].ok
        poisoned = outcomes["poison"]
        assert poisoned.ok and poisoned.isolated
        assert any("float64" in d for d in poisoned.degradations)
        assert_valid(
            poisoned.output,
            per_request("(1: 0.5)", np.arange(1, 9), dtype=np.float64),
        )
        counters = engine.metrics.snapshot()["counters"]
        assert counters["batch.isolated"] == 1

    def test_isolation_failure_is_typed_not_raised(self):
        # With every rescue disabled the poisoned request must carry a
        # typed error while its batch-mates still succeed.
        policy = FallbackPolicy(
            promote_dtype=False, shrink_chunk=False, serial_fallback=False
        )
        requests = [
            BatchRequest("(1: 1)", np.arange(5, dtype=np.int32), tag="ok"),
            BatchRequest("(1: 0.5)", np.arange(1, 5, dtype=np.int32),
                         dtype=np.int32, tag="bad"),
        ]
        outcomes = {o.tag: o for o in BatchEngine(policy=policy).execute(requests)}
        assert outcomes["ok"].ok
        bad = outcomes["bad"]
        assert not bad.ok and bad.output is None
        assert isinstance(bad.error, NumericalError)

    def test_metrics_account_for_groups_and_padding(self, rng):
        engine = BatchEngine(planner=BatchPlanner(min_bucket=32))
        requests = [
            BatchRequest("(1: 1)", rng.integers(-5, 5, size=20).astype(np.int32)),
            BatchRequest("(1: 1)", rng.integers(-5, 5, size=30).astype(np.int32)),
            BatchRequest("(1: 1)", np.zeros(0, dtype=np.int32)),
        ]
        engine.execute(requests)
        snap = engine.metrics.snapshot()
        assert snap["counters"]["batch.requests"] == 3
        assert snap["counters"]["batch.groups"] == 1
        assert snap["counters"]["batch.empty_requests"] == 1
        assert snap["counters"]["batch.padded_values"] == (32 - 20) + (32 - 30)
        assert snap["histograms"]["batch.group_size"]["count"] == 1

    def test_group_solve_builds_factor_table_once(self, rng):
        clear_factor_cache()
        engine = BatchEngine()
        requests = [
            BatchRequest("(1: 2, -1)", rng.integers(-5, 5, size=100).astype(np.int32))
            for _ in range(16)
        ]
        engine.execute(requests)
        assert factor_cache_stats()["misses"] == 1

    def test_traced_run_emits_group_spans(self, rng):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        engine = BatchEngine(tracer=tracer)
        engine.execute(
            [BatchRequest("(1: 1)", rng.integers(-5, 5, size=10).astype(np.int32))]
        )
        names = [e.name for e in tracer.events if e.cat == "batch"]
        assert "batch_group" in names


SIGNATURES = ("(1: 1)", "(1: 2, -1)", "(0.2: 0.8)", "(0.5, 0.5: 0.9)")


@st.composite
def request_mixes(draw):
    count = draw(st.integers(min_value=0, max_value=8))
    specs = []
    for i in range(count):
        signature = draw(st.sampled_from(SIGNATURES))
        n = draw(st.integers(min_value=0, max_value=40))
        seed = draw(st.integers(min_value=0, max_value=2**16))
        specs.append((signature, n, seed))
    return specs


@given(request_mixes())
@settings(max_examples=30, deadline=None)
def test_random_mixes_match_per_request(specs):
    """Any queue — empty inputs, n < k tails, mixed dtypes — matches
    the per-request solver through the full planner + engine path."""
    from repro.core.recurrence import Recurrence

    requests = []
    for signature, n, seed in specs:
        recurrence = Recurrence.parse(signature)
        generator = np.random.default_rng(seed)
        if recurrence.is_integer:
            values = generator.integers(-100, 100, size=n).astype(np.int32)
        else:
            values = generator.standard_normal(n).astype(np.float32)
        requests.append(BatchRequest(signature, values))
    outcomes = execute_batch(
        requests, planner=BatchPlanner(min_bucket=16, max_batch=3)
    )
    assert len(outcomes) == len(specs)
    for outcome, request in zip(outcomes, requests):
        assert outcome.ok, outcome.error
        if request.n == 0:
            assert outcome.output.size == 0
            assert outcome.output.dtype == request.dtype
            continue
        expected = per_request(request.signature, request.values)
        assert outcome.output.dtype == expected.dtype
        if np.issubdtype(expected.dtype, np.integer):
            assert np.array_equal(outcome.output, expected)
        else:
            assert_valid(outcome.output, expected)


class TestDeadlines:
    """Per-request deadlines: cooperative shedding at every checkpoint,
    typed DeadlineExceeded, and index integrity when a queue shrinks."""

    def _clock(self, start=0.0):
        state = {"now": start}
        return state, (lambda: state["now"])

    def test_expired_in_queue_is_shed_typed(self):
        from repro.core.errors import DeadlineExceeded

        state, clock = self._clock(10.0)
        engine = BatchEngine(clock=clock)
        request = BatchRequest(
            "(1: 1)", np.arange(8, dtype=np.int32), deadline=5.0
        )
        [outcome] = engine.execute([request])
        assert not outcome.ok
        assert isinstance(outcome.error, DeadlineExceeded)
        assert outcome.engine == "shed"
        assert not outcome.isolated
        counters = engine.metrics.snapshot()["counters"]
        assert counters["batch.shed_expired"] == 1
        # No group was ever formed for it.
        assert counters.get("batch.groups", 0) == 0

    def test_live_deadline_solves_normally(self):
        state, clock = self._clock(0.0)
        engine = BatchEngine(clock=clock)
        x = np.arange(1, 9, dtype=np.int32)
        [outcome] = engine.execute(
            [BatchRequest("(1: 1)", x, deadline=1e9)]
        )
        assert outcome.ok and outcome.engine == "batch"
        np.testing.assert_array_equal(outcome.output, np.cumsum(x))

    def test_shed_requests_do_not_corrupt_batch_indices(self):
        """An expired request filtered out before planning must not
        shift its batch-mates' outcome slots (the planner numbers the
        filtered list; the engine maps back to submission order)."""
        state, clock = self._clock(10.0)
        engine = BatchEngine(clock=clock)
        a = np.arange(1, 9, dtype=np.int32)
        b = np.arange(1, 17, dtype=np.int32)
        requests = [
            BatchRequest("(1: 1)", a, tag="live-a", deadline=None),
            BatchRequest("(1: 1)", a * 2, tag="dead", deadline=1.0),
            BatchRequest("(1: 2, -1)", b, tag="live-b", deadline=99.0),
        ]
        outcomes = engine.execute(requests)
        assert [o.tag for o in outcomes] == ["live-a", "dead", "live-b"]
        assert outcomes[0].ok
        np.testing.assert_array_equal(outcomes[0].output, np.cumsum(a))
        assert not outcomes[1].ok and outcomes[1].engine == "shed"
        assert outcomes[2].ok
        np.testing.assert_array_equal(
            outcomes[2].output, per_request("(1: 2, -1)", b)
        )

    def test_deadline_passing_mid_solve_sheds_after_group(self):
        """A deadline that expires while the group is solving yields a
        typed error, never the late result.  The tracer span hook is
        the deterministic way to advance time 'during' the solve."""
        from repro.core.errors import DeadlineExceeded
        from repro.obs.tracer import Tracer

        state, clock = self._clock(0.0)

        class SpanClockTracer(Tracer):
            def span(self, name, **kwargs):
                if name == "batch_group":
                    state["now"] += 100.0
                return super().span(name, **kwargs)

        engine = BatchEngine(clock=clock, tracer=SpanClockTracer())
        x = np.arange(1, 9, dtype=np.int32)
        outcomes = engine.execute(
            [
                BatchRequest("(1: 1)", x, tag="missed", deadline=50.0),
                BatchRequest("(1: 1)", x, tag="patient", deadline=1e9),
            ]
        )
        missed = next(o for o in outcomes if o.tag == "missed")
        patient = next(o for o in outcomes if o.tag == "patient")
        assert not missed.ok
        assert isinstance(missed.error, DeadlineExceeded)
        assert "while its group was solving" in str(missed.error)
        assert patient.ok
        counters = engine.metrics.snapshot()["counters"]
        assert counters["batch.deadline_missed"] == 1

    def test_expired_awaiting_group_shed_before_solving(self):
        """With two groups, time advancing during the first group's
        solve must shed the second group's expired member before any
        of its work runs."""
        from repro.obs.tracer import Tracer

        state, clock = self._clock(0.0)

        class SpanClockTracer(Tracer):
            def span(self, name, **kwargs):
                if name == "batch_group":
                    state["now"] += 100.0
                return super().span(name, **kwargs)

        engine = BatchEngine(clock=clock, tracer=SpanClockTracer())
        x = np.arange(1, 9, dtype=np.int32)
        outcomes = engine.execute(
            [
                BatchRequest("(1: 1)", x, tag="first-group", deadline=None),
                BatchRequest("(1: 2, -1)", x, tag="too-late", deadline=50.0),
            ]
        )
        late = next(o for o in outcomes if o.tag == "too-late")
        assert not late.ok and late.engine == "shed"
        assert "awaiting its group" in str(late.error)

    def test_isolation_respects_remaining_budget(self):
        """A request that needs isolation carries its remaining budget
        into the resilience policy instead of the engine default."""
        captured = {}
        import repro.batch.engine as engine_module

        original = engine_module.solve_request

        def spy(recurrence, values, **kwargs):
            captured["policy"] = kwargs["policy"]
            return original(recurrence, values, **kwargs)

        state, clock = self._clock(0.0)
        engine = BatchEngine(clock=clock)
        engine_module.solve_request, saved = spy, original
        try:
            # NaN input forces isolation; deadline 7.5s from "now".
            values = np.array([1.0, np.nan, 3.0], dtype=np.float32)
            [outcome] = engine.execute(
                [BatchRequest("(1: 1)", values, deadline=7.5)]
            )
        finally:
            engine_module.solve_request = saved
        assert outcome.ok  # serial fallback handles non-finite input
        assert captured["policy"].deadline_s == pytest.approx(7.5, abs=0.5)

    def test_deadline_coerced_to_float(self):
        request = BatchRequest(
            "(1: 1)", np.arange(4, dtype=np.int32), deadline=7
        )
        assert isinstance(request.deadline, float)
