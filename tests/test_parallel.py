"""The multicore sharded backend: slabs, the affine scan, and faults.

The headline contract (see docs/parallel.md): for integer dtypes the
process backend is *bit-identical* to the single-process solver — the
scan's reassociation happens in a wraparound-arithmetic ring — and for
floats it agrees within the library tolerance.  The tests here force
small chunk sizes so a few thousand values already span many slabs and
exercise every boundary case (uneven spans, one-row slabs, single-chunk
inputs that bypass the pool entirely).
"""

from __future__ import annotations

import dataclasses
import json
import tracemalloc

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import WorkerError
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.validation import compare_results
from repro.obs.profile import build_profile
from repro.obs.exporters import chrome_trace
from repro.obs.tracer import NULL_TRACER, TracePid, Tracer, merge_worker_events
from repro.parallel.scan import (
    affine_compose,
    affine_identity,
    exclusive_affine_scan,
)
from repro.parallel.sharding import ShardOptions, resolve_workers, slab_spans
from repro.plr.phase1 import thread_local_solve
from repro.plr.phase2 import LOOKBACK_SUMMARY_THRESHOLD
from repro.plr.solver import PLRSolver
from repro.batch.solver import BatchSolver
from repro.resilience.solver import ResilientSolver


def small_plan(solver: PLRSolver, n: int, chunk: int = 64):
    """A many-chunk plan: chunk size 64 so small inputs span many slabs."""
    plan = solver.plan_for(n)
    return dataclasses.replace(
        plan,
        chunk_size=chunk,
        values_per_thread=1,
        num_chunks=-(-n // chunk),
    )


# ----------------------------------------------------------------------
# Slab partitioning


class TestSlabSpans:
    def test_even_split(self):
        assert slab_spans(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads_extras(self):
        assert slab_spans(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_fewer_items_than_slabs_drops_empty_spans(self):
        assert slab_spans(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_zero_items(self):
        assert slab_spans(0, 4) == []

    def test_single_slab(self):
        assert slab_spans(7, 1) == [(0, 7)]

    def test_validation(self):
        with pytest.raises(ValueError):
            slab_spans(-1, 2)
        with pytest.raises(ValueError):
            slab_spans(5, 0)

    @pytest.mark.parametrize("num_items,slabs", [(1, 1), (7, 3), (100, 7), (64, 64)])
    def test_spans_tile_the_range(self, num_items, slabs):
        spans = slab_spans(num_items, slabs)
        assert spans[0][0] == 0 and spans[-1][1] == num_items
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in spans]
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1


class TestShardOptions:
    def test_defaults_are_safe(self):
        options = ShardOptions()
        assert options.workers is None and options.inject is None

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardOptions(workers=0)

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ShardOptions(workers=-2)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            ShardOptions(timeout_s=0.0)
        with pytest.raises(ValueError, match="timeout_s must be positive"):
            ShardOptions(timeout_s=-1.0)

    def test_rejects_unknown_injection(self):
        with pytest.raises(ValueError):
            ShardOptions(inject="explode")

    def test_resolve_workers_clamps_to_work(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(2, 100) == 2
        assert resolve_workers(None, 5) >= 1
        assert resolve_workers(None, 0) == 0 or resolve_workers(None, 1) == 1

    def test_resolve_workers_single_chunk_means_one(self):
        assert resolve_workers(8, 1) == 1
        assert resolve_workers(None, 1) == 1

    def test_resolve_workers_never_below_one(self):
        assert resolve_workers(4, 0) == 1

    def test_oversubscribed_pool_matches_vectorized(self):
        # workers > num_chunks: the pool clamps to the available slabs
        # and the sharded output is still exact.
        from repro.plr.solver import PLRSolver

        values = np.arange(1, 401, dtype=np.int32)
        sharded = PLRSolver(
            "(1: 2, -1)",
            backend="process",
            shard_options=ShardOptions(workers=6),
        ).solve(values)
        single = PLRSolver("(1: 2, -1)").solve(values)
        assert np.array_equal(sharded, single)


# ----------------------------------------------------------------------
# The affine scan


def sequential_exclusive_prefixes(summaries, k, dtype):
    """The obvious serial reference: result[i] composes summaries[:i]."""
    prefixes = [affine_identity(k, dtype)]
    for summary in summaries[:-1]:
        prefixes.append(affine_compose(summary, prefixes[-1]))
    # prefixes[i] must equal summaries[i-1] ∘ ... ∘ summaries[0]; rebuild
    # directly to avoid depending on the composition order under test.
    out = [affine_identity(k, dtype)]
    for i in range(1, len(summaries)):
        acc = summaries[0]
        for s in summaries[1:i]:
            acc = affine_compose(acc, s)
        out.append(acc)
    return out


class TestAffineScan:
    def test_identity_and_compose(self):
        eye, zero = affine_identity(3, np.dtype(np.int64))
        assert np.array_equal(eye, np.eye(3, dtype=np.int64))
        assert np.array_equal(zero, np.zeros(3, dtype=np.int64))
        rng = np.random.default_rng(0)
        a = (rng.integers(-3, 3, (3, 3)), rng.integers(-3, 3, 3))
        x = rng.integers(-5, 5, 3)
        composed = affine_compose(a, affine_identity(3, np.dtype(np.int64)))
        assert np.array_equal(composed[0] @ x + composed[1], a[0] @ x + a[1])

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 7, 8, 13])
    def test_matches_sequential_composition_int(self, count):
        rng = np.random.default_rng(count)
        k = 2
        summaries = [
            (
                rng.integers(-4, 4, (k, k)).astype(np.int64),
                rng.integers(-9, 9, k).astype(np.int64),
            )
            for _ in range(count)
        ]
        scanned = exclusive_affine_scan(summaries, k, np.dtype(np.int64))
        expected = sequential_exclusive_prefixes(summaries, k, np.dtype(np.int64))
        assert len(scanned) == count
        for (sa, sb), (ea, eb) in zip(scanned, expected):
            assert np.array_equal(sa, ea)
            assert np.array_equal(sb, eb)

    def test_matches_sequential_composition_float(self):
        rng = np.random.default_rng(7)
        k = 3
        summaries = [
            (rng.standard_normal((k, k)), rng.standard_normal(k))
            for _ in range(6)
        ]
        scanned = exclusive_affine_scan(summaries, k, np.dtype(np.float64))
        expected = sequential_exclusive_prefixes(summaries, k, np.dtype(np.float64))
        for (sa, sb), (ea, eb) in zip(scanned, expected):
            np.testing.assert_allclose(sa, ea, rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(sb, eb, rtol=1e-12, atol=1e-12)

    def test_empty(self):
        assert exclusive_affine_scan([], 2, np.dtype(np.int64)) == []

    def test_first_prefix_is_identity(self):
        rng = np.random.default_rng(1)
        summaries = [(rng.integers(-3, 3, (2, 2)), rng.integers(-3, 3, 2))]
        (a, b), = exclusive_affine_scan(summaries, 2, np.dtype(np.int64))
        assert np.array_equal(a, np.eye(2, dtype=np.int64))
        assert np.array_equal(b, np.zeros(2, dtype=np.int64))


# ----------------------------------------------------------------------
# Process backend == single backend


INT_CASES = [
    ("(1: 2, -1)", np.int32),
    ("(1: 1)", np.int64),
    ("(1: 1, 1)", np.int32),
]


class TestProcessBackendEquality:
    @pytest.mark.parametrize("signature,dtype", INT_CASES)
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_integers_bit_identical(self, signature, dtype, workers):
        n = 64 * 13 + 17  # uneven slabs and a padded tail
        rng = np.random.default_rng(workers)
        values = rng.integers(-100, 100, n).astype(dtype)

        single = PLRSolver(signature)
        expected = single.solve(values, plan=small_plan(single, n))

        sharded = PLRSolver(signature, backend="process", workers=workers)
        got = sharded.solve(values, plan=small_plan(sharded, n))
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    def test_floats_within_tolerance(self):
        n = 64 * 11 + 5
        rng = np.random.default_rng(3)
        values = rng.standard_normal(n).astype(np.float64)
        single = PLRSolver("(1: 1.5, -0.6)")
        expected = single.solve(values, plan=small_plan(single, n), dtype=np.float64)
        sharded = PLRSolver("(1: 1.5, -0.6)", backend="process", workers=5)
        got = sharded.solve(values, plan=small_plan(sharded, n), dtype=np.float64)
        assert compare_results(got, expected).ok

    def test_single_chunk_runs_inline(self):
        # n smaller than one chunk: the pool path short-circuits and the
        # arithmetic is the single-process path verbatim.
        values = np.arange(17, dtype=np.int32)
        solver = PLRSolver("(1: 2, -1)", backend="process", workers=4)
        expected = serial_full(values, Recurrence.parse("(1: 2, -1)").signature)
        assert np.array_equal(solver.solve(values), expected)

    def test_matches_serial_reference(self):
        n = 64 * 9
        values = np.random.default_rng(5).integers(-50, 50, n).astype(np.int32)
        solver = PLRSolver("(1: 2, -1)", backend="process", workers=3)
        got = solver.solve(values, plan=small_plan(solver, n))
        expected = serial_full(values, solver.recurrence.signature)
        assert np.array_equal(got, expected)

    def test_process_backend_exposes_no_partial(self):
        n = 64 * 6
        values = np.ones(n, dtype=np.int32)
        solver = PLRSolver("(1: 1)", backend="process", workers=2)
        out, artifacts = solver.solve_with_artifacts(values, plan=small_plan(solver, n))
        assert artifacts.partial is None
        assert np.array_equal(out, np.arange(1, n + 1, dtype=np.int32))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            PLRSolver("(1: 1)", backend="threads")


class TestBatchSharding:
    def test_batch_rows_match_single(self):
        rng = np.random.default_rng(11)
        batch = rng.integers(-40, 40, size=(5, 300)).astype(np.int32)
        single = BatchSolver("(1: 2, -1)")
        plan = small_plan(PLRSolver("(1: 2, -1)"), 300)
        expected = single.solve(batch, plan=plan)
        sharded = BatchSolver("(1: 2, -1)", backend="process", workers=3)
        got = sharded.solve(batch, plan=plan)
        assert np.array_equal(got, expected)

    def test_single_row_runs_inline(self):
        batch = np.ones((1, 100), dtype=np.int64)
        sharded = BatchSolver("(1: 1)", backend="process", workers=4)
        out = sharded.solve(batch)
        assert np.array_equal(out[0], np.arange(1, 101, dtype=np.int64))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            BatchSolver("(1: 1)", backend="gpu")


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_property_process_equals_single(data):
    """Random signature × length × worker count: sharded == single.

    Bit-identical for the integer draw (wraparound arithmetic is a
    ring — reassociating the carry scan changes nothing), tolerance
    comparison for the float draw.
    """
    signature, dtype = data.draw(
        st.sampled_from(
            [
                ("(1: 1)", np.int64),
                ("(1: 2, -1)", np.int32),
                ("(1: 1, 1)", np.int64),
                ("(1: 1.5, -0.6)", np.float64),
            ]
        ),
        label="case",
    )
    n = data.draw(st.integers(min_value=65, max_value=900), label="n")
    workers = data.draw(st.sampled_from([1, 2, 7]), label="workers")
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16), label="seed"))
    if np.issubdtype(np.dtype(dtype), np.integer):
        values = rng.integers(-100, 100, n).astype(dtype)
    else:
        values = rng.standard_normal(n).astype(dtype)

    single = PLRSolver(signature)
    expected = single.solve(values, plan=small_plan(single, n), dtype=dtype)
    sharded = PLRSolver(signature, backend="process", workers=workers)
    got = sharded.solve(values, plan=small_plan(sharded, n), dtype=dtype)

    if np.issubdtype(np.dtype(dtype), np.integer):
        assert np.array_equal(got, expected)
    else:
        assert compare_results(got, expected).ok


# ----------------------------------------------------------------------
# Failure semantics


class TestWorkerFaults:
    def test_dead_worker_raises_typed_error(self):
        n = 64 * 8
        values = np.ones(n, dtype=np.int32)
        solver = PLRSolver(
            "(1: 1)",
            backend="process",
            shard_options=ShardOptions(workers=2, inject="die"),
        )
        with pytest.raises(WorkerError, match="died"):
            solver.solve(values, plan=small_plan(solver, n))

    def test_hung_worker_times_out(self):
        n = 64 * 8
        values = np.ones(n, dtype=np.int32)
        solver = PLRSolver(
            "(1: 1)",
            backend="process",
            shard_options=ShardOptions(workers=2, timeout_s=1.0, inject="hang"),
        )
        with pytest.raises(WorkerError, match="did not finish"):
            solver.solve(values, plan=small_plan(solver, n))

    def test_resilient_solver_degrades_to_single_process(self):
        n = 4096
        values = np.random.default_rng(9).integers(-50, 50, n).astype(np.int32)
        solver = ResilientSolver(
            "(1: 2, -1)",
            backend="process",
            shard_options=ShardOptions(workers=2, inject="die"),
        )
        report = solver.solve_with_report(values)
        assert report.ok
        assert report.degraded
        assert [a.outcome for a in report.attempts][0] == "worker"
        assert any("single-process" in d for d in report.degradations)
        expected = serial_full(values, Recurrence.parse("(1: 2, -1)").signature)
        assert np.array_equal(report.output, expected)


# ----------------------------------------------------------------------
# Memory and hot-path regressions


class TestInPlaceCorrection:
    def test_solve_peak_memory_stays_near_one_buffer(self):
        # 2^20 int32 values in 1024 chunks of 1024: the padded length
        # equals n, so the solve's only full-size allocation should be
        # Phase 1's working copy.  The historical out-of-place Phase 2
        # (copy + full-size matmul product) peaked near 3x; the in-place
        # blocked correction must stay well under 2x.
        n = 1 << 20
        values = np.ones(n, dtype=np.int32)
        solver = PLRSolver("(1: 1)")
        plan = dataclasses.replace(
            solver.plan_for(n), chunk_size=1024, values_per_thread=1, num_chunks=1024
        )
        assert plan.padded_n == n
        solver.solve(values[: 1 << 12], plan=small_plan(solver, 1 << 12))  # warm caches
        tracemalloc.start()
        out = solver.solve(values, plan=plan)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert out[-1] == n
        assert peak < 1.8 * values.nbytes, (
            f"peak {peak / 2**20:.1f} MiB vs input {values.nbytes / 2**20:.1f} MiB"
        )

    def test_artifacts_keep_pristine_partial(self):
        n = 64 * 5
        values = np.ones(n, dtype=np.int64)
        solver = PLRSolver("(1: 1)")
        plan = small_plan(solver, n)
        out, artifacts = solver.solve_with_artifacts(values, plan=plan)
        # The partial is the *local* result: chunk c restarts from zero
        # history, so its first element is the raw input, not the prefix.
        assert artifacts.partial is not None
        assert artifacts.partial[1, 0] == 1
        assert out[64] == 65


class TestThreadLocalSolve:
    def test_matches_naive_reference_bit_for_bit(self):
        rng = np.random.default_rng(2)
        chunks = rng.standard_normal((8, 7))
        feedback = [0.9, -0.5]
        expected = chunks.copy()
        for row in expected:
            for i in range(1, 7):
                for j in range(1, min(i, 2) + 1):
                    row[i] += row[i - j] * feedback[j - 1]
        got = chunks.copy()
        thread_local_solve(got, feedback, 7)
        assert np.array_equal(got, expected)


# ----------------------------------------------------------------------
# Observability


class TestWorkerTracing:
    def test_worker_events_merge_into_host_trace(self):
        n = 64 * 8
        values = np.ones(n, dtype=np.int32)
        solver = PLRSolver("(1: 1)", backend="process", workers=2, tracer=True)
        solver.solve(values, plan=small_plan(solver, n))
        worker_pids = {
            e.pid for e in solver.tracer.events if e.pid >= TracePid.WORKER_BASE
        }
        assert TracePid.worker(0) in worker_pids
        assert TracePid.worker(1) in worker_pids
        names = {e.name for e in solver.tracer.events if e.pid >= TracePid.WORKER_BASE}
        assert "phase1_slab" in names
        assert "phase2_slab" in names
        payload = json.dumps(chrome_trace(solver.tracer))
        assert "worker-0" in payload and "worker-1" in payload

    def test_merge_is_noop_on_disabled_tracer(self):
        worker = Tracer()
        with worker.span("x", cat="test"):
            pass
        merge_worker_events(NULL_TRACER, 0, worker.events)  # must not raise

    def test_merge_remaps_pid(self):
        worker = Tracer()
        worker.instant("probe", cat="test")
        host = Tracer()
        merge_worker_events(host, 3, worker.events)
        assert [e.pid for e in host.events] == [TracePid.worker(3)]
        assert TracePid.name(TracePid.worker(3)) == "worker-3"


class TestLookbackSummary:
    def _trace_solve(self, num_chunks: int) -> Tracer:
        n = 64 * num_chunks
        solver = PLRSolver("(1: 1)", tracer=True)
        solver.solve(np.ones(n, dtype=np.int64), plan=small_plan(solver, n))
        return solver.tracer

    def test_large_runs_emit_one_summary_event(self):
        chunks = LOOKBACK_SUMMARY_THRESHOLD + 16  # 80
        tracer = self._trace_solve(chunks)
        summaries = [e for e in tracer.events if e.name == "lookback_summary"]
        per_chunk = [e for e in tracer.events if e.name == "lookback"]
        assert len(summaries) == 1 and not per_chunk
        assert summaries[0].args == {
            "first_chunk": 1,
            "chunks": chunks - 1,
            "distance": 1,
        }

    def test_small_runs_keep_per_chunk_events(self):
        tracer = self._trace_solve(10)
        per_chunk = [e for e in tracer.events if e.name == "lookback"]
        summaries = [e for e in tracer.events if e.name == "lookback_summary"]
        assert len(per_chunk) == 9 and not summaries

    def test_profile_consumes_summary_form(self):
        chunks = LOOKBACK_SUMMARY_THRESHOLD + 16
        tracer = self._trace_solve(chunks)
        profile = build_profile(tracer.events, num_chunks=chunks)
        assert profile.lookback_histogram == {1: chunks - 1}
        assert profile.critical_path_length == chunks

    def test_profile_reads_both_forms_identically(self):
        small = build_profile(self._trace_solve(10).events, num_chunks=10)
        assert small.lookback_histogram == {1: 9}
        assert small.critical_path_length == 10
