"""Structural validation of the emitted CUDA (Section 3's 8 sections)."""

import re

import numpy as np
import pytest

from repro.codegen.cuda import emit_cuda
from repro.codegen.ir import build_ir
from repro.core.coefficients import table1_signatures
from repro.core.recurrence import Recurrence
from repro.plr.optimizer import OptimizationConfig


def cuda_for(text: str, n: int = 1 << 20, config=None) -> str:
    ir = build_ir(Recurrence.parse(text), n, optimization=config)
    return emit_cuda(ir)


@pytest.fixture(scope="module")
def prefix_cuda() -> str:
    return cuda_for("(1: 1)")


@pytest.fixture(scope="module")
def order2_cuda() -> str:
    return cuda_for("(1: 2, -1)")


class TestWellFormedness:
    @pytest.mark.parametrize("name", list(table1_signatures()))
    def test_balanced_braces_and_parens(self, name):
        source = emit_cuda(
            build_ir(Recurrence(table1_signatures()[name]), 1 << 18)
        )
        assert source.count("{") == source.count("}"), name
        assert source.count("(") == source.count(")"), name

    def test_no_unrendered_placeholders(self, order2_cuda):
        assert "{ir." not in order2_cuda
        assert "None" not in order2_cuda


class TestEightSections:
    @pytest.mark.parametrize(
        "marker",
        [
            "Section 1",  # factor arrays
            "Section 2",  # chunk acquisition
            "Section 3",  # map stage
            "Section 4a",  # warp-level phase 1
            "Section 4b",  # block-level phase 1
            "Section 5",  # local carries + fence + flag
            "Section 6",  # variable look-back
            "Section 7",  # final correction + write
            "Section 8",  # host driver
        ],
    )
    def test_section_present(self, order2_cuda, marker):
        assert marker in order2_cuda


class TestKernelConstructs:
    def test_atomic_chunk_counter(self, order2_cuda):
        assert "atomicAdd(&plr_chunk_counter, 1u)" in order2_cuda

    def test_memory_fences_guard_flags(self, order2_cuda):
        # Both carry publications need a fence before the flag store.
        assert order2_cuda.count("__threadfence()") >= 2

    def test_shuffles_in_warp_phase(self, order2_cuda):
        assert "__shfl_sync" in order2_cuda

    def test_ballot_lookback(self, order2_cuda):
        assert "__ballot_sync" in order2_cuda
        assert "__ffs" in order2_cuda

    def test_shared_memory_staging(self, order2_cuda):
        assert "__shared__" in order2_cuda
        assert "__syncthreads()" in order2_cuda

    def test_volatile_flags(self, order2_cuda):
        assert "volatile int *flags" in order2_cuda

    def test_plan_constants_embedded(self, order2_cuda):
        assert "#define PLR_K 2" in order2_cuda
        assert "#define PLR_B 1024" in order2_cuda
        assert "#define PLR_LOOKBACK 32" in order2_cuda

    def test_host_driver_verifies(self, order2_cuda):
        assert "plr_serial_reference" in order2_cuda
        assert "cudaEventElapsedTime" in order2_cuda
        assert "verified" in order2_cuda


class TestOptimizationVisibility:
    def test_prefix_sum_constant_folded(self, prefix_cuda):
        # All-ones factors: array suppressed, constant #define emitted.
        assert "PLR_FACTOR_0_CONST 1" in prefix_cuda
        assert "plr_factors_0[" not in prefix_cuda.split("plr_factor_storage")[0].split("#define")[0] or True
        assert "array suppressed" in prefix_cuda

    def test_tuple_conditional_add(self):
        source = cuda_for("(1: 0, 1)")
        assert "0/1 factors: no multiply" in source

    def test_filter_truncated_tail(self):
        source = cuda_for("(0.2: 0.8)")
        assert "tail suppressed" in source
        match = re.search(r"plr_factors_0\[(\d+)\]", source)
        assert match and int(match.group(1)) < 1024

    def test_filter_warp_skip(self):
        source = cuda_for("(0.2: 0.8)")
        assert "later warps skip Phase 1 work" in source

    def test_higher_order_buffered(self, order2_cuda):
        assert "s_factors" in order2_cuda

    def test_factor_literals_match_table(self, order2_cuda):
        # The first factors of (1: 2, -1) are 2, 3, 4, 5 ...
        assert re.search(r"\{\s*\n\s*2, 3, 4, 5,", order2_cuda)

    def test_disabled_optimizations_emit_full_arrays(self):
        source = cuda_for("(1: 1)", config=OptimizationConfig.disabled())
        assert "PLR_FACTOR_0_CONST" not in source
        ir = build_ir(
            Recurrence.parse("(1: 1)"), 1 << 20,
            optimization=OptimizationConfig.disabled(),
        )
        assert f"plr_factors_0[{ir.chunk_size}]" in source

    def test_shift_suppression_extension(self):
        source = cuda_for(
            "(1: 1, 1)", config=OptimizationConfig.extended()
        )
        assert "PLR_FACTOR_1_SCALE" in source


class TestMapStage:
    def test_pure_recurrence_elides_map(self, prefix_cuda):
        assert "map stage elided" in prefix_cuda

    def test_high_pass_emits_map(self):
        source = cuda_for("(0.9, -0.9: 0.8)")
        assert "FIR map stage" in source
        assert "plr_load_input(input, gpos - 1, n)" in source


def test_header_documents_plan():
    source = cuda_for("(1: 3, -3, 1)", n=1 << 24)
    assert "(1: 3, -3, 1)" in source
    assert "order k=3" in source
