"""Multi-dimensional recurrences: batched rows, axes, 2D, SAT."""

import numpy as np
import pytest

from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.core.validation import assert_valid
from repro.plr.nd import filter2d, filter_axis, solve_batch, summed_area_table


class TestSolveBatch:
    def test_rows_independent(self, rng):
        values = rng.integers(-9, 9, (13, 500)).astype(np.int32)
        out = solve_batch(values, "(1: 2, -1)")
        sig = Signature.parse("(1: 2, -1)")
        for r in range(13):
            np.testing.assert_array_equal(
                out[r], serial_full(values[r], sig), err_msg=f"row {r}"
            )

    def test_prefix_sum_equals_cumsum(self, rng):
        values = rng.integers(-9, 9, (5, 1000)).astype(np.int32)
        np.testing.assert_array_equal(
            solve_batch(values, "(1: 1)"), np.cumsum(values, axis=1, dtype=np.int32)
        )

    def test_float_filter_rows(self, rng):
        values = rng.standard_normal((7, 2200)).astype(np.float32)
        out = solve_batch(values, "(0.04: 1.6, -0.64)")
        sig = Signature.parse("(0.04: 1.6, -0.64)")
        for r in range(7):
            assert_valid(out[r], serial_full(values[r], sig), context=f"row {r}")

    def test_map_stage_in_batch(self, rng):
        values = rng.standard_normal((3, 300)).astype(np.float32)
        out = solve_batch(values, "(0.9, -0.9: 0.8)")
        sig = Signature.parse("(0.9, -0.9: 0.8)")
        for r in range(3):
            assert_valid(out[r], serial_full(values[r], sig))

    def test_single_row(self, rng):
        values = rng.integers(-9, 9, (1, 100)).astype(np.int32)
        np.testing.assert_array_equal(
            solve_batch(values, "(1: 1)")[0], np.cumsum(values[0], dtype=np.int32)
        )

    def test_empty(self):
        out = solve_batch(np.zeros((0, 10), dtype=np.int32), "(1: 1)")
        assert out.shape == (0, 10)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            solve_batch(rng.integers(0, 5, 10), "(1: 1)")

    def test_input_not_modified(self, rng):
        values = rng.integers(-9, 9, (4, 64)).astype(np.int32)
        snapshot = values.copy()
        solve_batch(values, "(1: 2, -1)")
        np.testing.assert_array_equal(values, snapshot)


class TestFilterAxis:
    def test_axis1_is_rowwise(self, rng):
        image = rng.integers(0, 9, (6, 40)).astype(np.int32)
        np.testing.assert_array_equal(
            filter_axis(image, "(1: 1)", axis=1),
            np.cumsum(image, axis=1, dtype=np.int32),
        )

    def test_axis0_is_columnwise(self, rng):
        image = rng.integers(0, 9, (40, 6)).astype(np.int32)
        np.testing.assert_array_equal(
            filter_axis(image, "(1: 1)", axis=0),
            np.cumsum(image, axis=0, dtype=np.int32),
        )

    def test_invalid_axis(self, rng):
        with pytest.raises(ValueError):
            filter_axis(rng.integers(0, 5, (4, 4)), "(1: 1)", axis=2)

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            filter_axis(rng.integers(0, 5, (2, 2, 2)), "(1: 1)")


class TestFilter2D:
    def test_separable_smoothing(self, rng):
        image = rng.standard_normal((24, 48)).astype(np.float32)
        out = filter2d(image, "(0.2: 0.8)")
        # Oracle: serial row filter, then serial column filter.
        sig = Signature.parse("(0.2: 0.8)")
        rows = np.stack([serial_full(image[r], sig) for r in range(24)])
        expected = np.stack(
            [serial_full(rows[:, c], sig) for c in range(48)], axis=1
        )
        assert_valid(out, expected)

    def test_distinct_row_column_filters(self, rng):
        image = rng.integers(0, 5, (10, 12)).astype(np.int32)
        out = filter2d(image, "(1: 1)", "(1: 0, 1)")
        rows = np.cumsum(image, axis=1, dtype=np.int32)
        sig = Signature.parse("(1: 0, 1)")
        expected = np.stack(
            [serial_full(rows[:, c], sig) for c in range(12)], axis=1
        )
        np.testing.assert_array_equal(out, expected)


class TestSummedAreaTable:
    def test_matches_double_cumsum(self, rng):
        image = rng.integers(0, 9, (33, 77)).astype(np.int32)
        sat = summed_area_table(image)
        expected = np.cumsum(np.cumsum(image, axis=1, dtype=np.int32), axis=0, dtype=np.int32)
        np.testing.assert_array_equal(sat, expected)

    def test_box_sum_query(self, rng):
        # The SAT's purpose: O(1) rectangle sums.
        image = rng.integers(0, 9, (20, 20)).astype(np.int64)
        sat = summed_area_table(image.astype(np.int64))
        r0, r1, c0, c1 = 3, 11, 5, 17
        box = sat[r1, c1]
        if r0 > 0:
            box -= sat[r0 - 1, c1]
        if c0 > 0:
            box -= sat[r1, c0 - 1]
        if r0 > 0 and c0 > 0:
            box += sat[r0 - 1, c0 - 1]
        assert box == image[r0 : r1 + 1, c0 : c1 + 1].sum()
