"""Semiring recurrences: the 'operators other than addition' extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plr.semiring import (
    BooleanSemiring,
    MaxPlus,
    MinPlus,
    SlidingWindowDP,
    semiring_correction_factors,
    semiring_serial,
    semiring_solve,
)


class TestSemiringLaws:
    @pytest.mark.parametrize("semiring", [MaxPlus(), MinPlus(), BooleanSemiring()])
    def test_identities(self, semiring):
        samples = (
            np.array([True, False])
            if semiring.dtype == np.bool_
            else np.array([-3.5, 0.0, 7.25])
        )
        for x in samples:
            assert semiring.add(semiring.zero, x) == x
            assert semiring.mul(semiring.one, x) == x

    @pytest.mark.parametrize("semiring", [MaxPlus(), MinPlus()])
    def test_zero_annihilates(self, semiring):
        assert semiring.mul(semiring.zero, 5.0) == semiring.zero

    @pytest.mark.parametrize("semiring", [MaxPlus(), MinPlus(), BooleanSemiring()])
    def test_distributivity(self, semiring, rng):
        if semiring.dtype == np.bool_:
            a, b, c = rng.random(3) < 0.5
        else:
            a, b, c = rng.normal(0, 3, 3)
        left = semiring.mul(a, semiring.add(b, c))
        right = semiring.add(semiring.mul(a, b), semiring.mul(a, c))
        assert left == right


class TestFactors:
    def test_maxplus_first_order_factors(self):
        # (max, +) analogue of d, d^2, d^3 ... is d, 2d, 3d ...
        rows = semiring_correction_factors([-1.5], MaxPlus(), 4)
        np.testing.assert_allclose(rows[0], [-1.5, -3.0, -4.5, -6.0])

    def test_boolean_factors_are_reachability(self):
        rows = semiring_correction_factors([True, True], BooleanSemiring(), 4)
        assert rows.dtype == np.bool_
        assert rows.all()  # every offset reachable via steps of 1 and 2

    def test_boolean_gap_pattern(self):
        # Steps of exactly 2: carry w[m-1] reaches only even offsets+1...
        rows = semiring_correction_factors([False, True], BooleanSemiring(), 6)
        np.testing.assert_array_equal(rows[0], [False, True, False, True, False, True])


class TestSolverEquivalence:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_maxplus_matches_serial(self, order, rng):
        values = rng.normal(0, 5, 1500)
        feedback = list(rng.normal(-2, 1, order))
        expected = semiring_serial(values, feedback, MaxPlus())
        got = semiring_solve(values, feedback, MaxPlus(), chunk_size=64)
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)

    def test_minplus_matches_serial(self, rng):
        values = rng.normal(0, 5, 900)
        got = semiring_solve(values, [1.0, 2.5], MinPlus(), chunk_size=32)
        expected = semiring_serial(values, [1.0, 2.5], MinPlus())
        np.testing.assert_allclose(got, expected)

    def test_boolean_matches_serial(self, rng):
        values = rng.random(700) < 0.05
        got = semiring_solve(values, [True, True, True], BooleanSemiring(), 64)
        expected = semiring_serial(values, [True, True, True], BooleanSemiring())
        np.testing.assert_array_equal(got, expected)

    def test_boolean_is_window_spread(self, rng):
        # With feedback (1,): once any element is True, everything
        # after it is True — boolean "prefix or".
        values = rng.random(100) < 0.1
        if not values.any():
            values[50] = True
        out = semiring_solve(values, [True], BooleanSemiring(), 32)
        first = int(np.argmax(values))
        assert not out[:first].any()
        assert out[first:].all()

    @pytest.mark.parametrize("n", [1, 63, 64, 65, 1000])
    def test_sizes(self, n, rng):
        values = rng.normal(0, 1, n)
        got = semiring_solve(values, [-0.5], MaxPlus(), chunk_size=64)
        expected = semiring_serial(values, [-0.5], MaxPlus())
        np.testing.assert_allclose(got, expected)

    def test_empty(self):
        out = semiring_solve(np.array([]), [1.0], MaxPlus())
        assert out.size == 0

    def test_chunk_size_must_be_power_of_two(self, rng):
        with pytest.raises(ValueError):
            semiring_solve(rng.normal(0, 1, 10), [1.0], MaxPlus(), chunk_size=48)

    def test_no_feedback_rejected(self, rng):
        with pytest.raises(ValueError):
            semiring_solve(rng.normal(0, 1, 10), [], MaxPlus())


class TestSlidingWindowDP:
    def test_matches_explicit_dp(self, rng):
        scores = rng.normal(0, 2, 400)
        dp = SlidingWindowDP((-1.0, -3.0))
        got = dp.solve(scores)
        best = np.empty_like(scores)
        for i in range(scores.size):
            acc = scores[i]
            if i >= 1:
                acc = max(acc, best[i - 1] - 1.0)
            if i >= 2:
                acc = max(acc, best[i - 2] - 3.0)
            best[i] = acc
        np.testing.assert_allclose(got, best)

    def test_monotone_under_zero_penalty(self, rng):
        # Zero penalty makes it a running maximum.
        scores = rng.normal(0, 2, 200)
        got = SlidingWindowDP((0.0,)).solve(scores)
        np.testing.assert_allclose(got, np.maximum.accumulate(scores))


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    n=st.integers(1, 600),
    order=st.integers(1, 3),
)
def test_semiring_property_maxplus(seed, n, order):
    """Random tropical recurrences: parallel equals serial."""
    gen = np.random.default_rng(seed)
    values = gen.normal(0, 4, n)
    feedback = list(gen.normal(-1, 2, order))
    got = semiring_solve(values, feedback, MaxPlus(), chunk_size=32)
    expected = semiring_serial(values, feedback, MaxPlus())
    np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)
