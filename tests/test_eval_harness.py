"""The experiment runner and report rendering."""

import numpy as np
import pytest

from repro.core.recurrence import Recurrence
from repro.eval.figures import FIGURE10_ORDER, figure10_throughputs, figure_definitions
from repro.eval.harness import (
    DEFAULT_SIZES,
    ExperimentDef,
    Series,
    run_experiment,
    validate_code,
)
from repro.eval.report import render_figure, render_figure10, render_table
from repro.eval.tables import representative_recurrence, table2_memory_usage
from repro.baselines.registry import make_code


class TestDefinitions:
    def test_paper_sweep(self):
        assert DEFAULT_SIZES[0] == 2**14
        assert DEFAULT_SIZES[-1] == 2**30
        assert len(DEFAULT_SIZES) == 17

    def test_all_figures_defined(self):
        defs = figure_definitions()
        assert set(defs) == {
            "fig1", "fig2", "fig3", "fig4", "fig5",
            "fig6", "fig7", "fig8", "fig9.1", "fig9.2", "fig9.3",
        }

    def test_integer_figures_use_integer_codes(self):
        defs = figure_definitions()
        for fid in ("fig1", "fig2", "fig3", "fig4", "fig5"):
            assert defs[fid].codes == ("memcpy", "CUB", "SAM", "Scan", "PLR")

    def test_float_figures_use_filter_codes(self):
        defs = figure_definitions()
        for fid in ("fig6", "fig7", "fig8"):
            assert defs[fid].codes == ("memcpy", "Alg3", "Rec", "Scan", "PLR")

    def test_figure10_covers_table1(self):
        assert len(FIGURE10_ORDER) == 11


class TestRunner:
    @pytest.fixture(scope="class")
    def small_result(self):
        definition = ExperimentDef(
            "mini",
            "miniature",
            Recurrence.parse("(1: 1)"),
            ("memcpy", "PLR"),
            sizes=(2**14, 2**16),
            validate_at=2000,
        )
        return run_experiment(definition)

    def test_series_structure(self, small_result):
        assert set(small_result.series) == {"memcpy", "PLR"}
        series = small_result.series["PLR"]
        assert series.sizes == [2**14, 2**16]
        assert all(t > 0 for t in series.throughput)

    def test_validation_ran(self, small_result):
        assert small_result.validated["PLR"] is True
        assert small_result.validated["memcpy"] is True

    def test_series_at(self, small_result):
        series = small_result.series["PLR"]
        assert series.at(2**14) == series.throughput[0]
        assert series.at(999) is None

    def test_unsupported_marked(self):
        definition = ExperimentDef(
            "mini2",
            "filter on CUB",
            Recurrence.parse("(0.2: 0.8)"),
            ("CUB",),
            sizes=(2**14,),
            validate_at=0,
        )
        result = run_experiment(definition, validate=False)
        assert result.series["CUB"].supported == [False]
        assert result.series["CUB"].at(2**14) is None
        assert result.series["CUB"].largest_supported() is None

    def test_validate_code_catches_breakage(self, monkeypatch):
        from repro.core.errors import ValidationError

        code = make_code("PLR")
        monkeypatch.setattr(
            type(code), "compute", lambda self, values, rec: values * 0
        )
        with pytest.raises(ValidationError):
            validate_code(code, Recurrence.parse("(1: 1)"), 1000)


class TestRendering:
    def test_render_figure(self):
        definition = ExperimentDef(
            "fig1",
            "Prefix-sum throughput",
            Recurrence.parse("(1: 1)"),
            ("memcpy", "PLR"),
            sizes=(2**14,),
            validate_at=0,
        )
        text = render_figure(run_experiment(definition, validate=False))
        assert "fig1" in text
        assert "memcpy" in text
        assert "2^14" in text

    def test_render_figure_marks_unsupported(self):
        definition = ExperimentDef(
            "figx",
            "scan cap",
            Recurrence.parse("(1: 1)"),
            ("Scan",),
            sizes=(2**30,),
            validate_at=0,
        )
        text = render_figure(run_experiment(definition, validate=False))
        assert "-" in text

    def test_render_figure10(self):
        text = render_figure10(figure10_throughputs())
        assert "opts on" in text
        assert "prefix_sum" in text
        assert text.count("x") >= 11  # one speedup per recurrence

    def test_render_table(self):
        text = render_table(table2_memory_usage(), "Table 2")
        assert "Table 2" in text
        assert "PLR" in text
        assert "order  1" in text


class TestRepresentativeRecurrences:
    def test_filter_codes_get_filters(self):
        for code in ("Alg3", "Rec"):
            for order in (1, 2, 3):
                rec = representative_recurrence(code, order)
                assert not rec.is_integer
                assert rec.order == order

    def test_scan_codes_get_integer(self):
        for code in ("PLR", "CUB", "SAM", "Scan"):
            for order in (1, 2, 3):
                rec = representative_recurrence(code, order)
                assert rec.is_integer
                assert rec.order == order
