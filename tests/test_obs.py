"""The observability subsystem: tracer, metrics, exporters, profiling.

Covers the ``repro.obs`` contracts end to end:

* disabled tracing is free — outputs bit-identical, runtime within 5%
  of an un-instrumented baseline pipeline;
* Chrome trace-event JSON is schema-valid and deterministic per seed;
* the look-back histogram and critical path match a hand-computed
  4-chunk order-2 case;
* metrics snapshots round-trip losslessly, including through
  ``SolveReport``;
* ``plr trace`` / ``plr profile`` produce parseable artifacts.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.obs.exporters import chrome_trace, timeline_svg, write_chrome_trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    global_metrics,
)
from repro.obs.profile import build_profile, profile_simulation
from repro.obs.tracer import NULL_TRACER, TracePid, Tracer, coerce_tracer
from repro.plr.optimizer import optimize_factors
from repro.plr.phase1 import doubling_widths, merge_level, thread_local_solve
from repro.plr.phase2 import (
    apply_global_correction,
    local_carries,
    propagate_carries,
    transition_matrix,
)
from repro.plr.solver import PLRSolver, clear_factor_cache, factor_cache_stats

pytestmark = pytest.mark.tier1


class TestTracer:
    def test_span_and_instant_events(self):
        tracer = Tracer()
        with tracer.span("outer", cat="t", args={"k": 1}):
            tracer.instant("mark", cat="t", tid=3)
        assert [e.name for e in tracer.events] == ["mark", "outer"]
        mark, outer = tracer.events
        assert mark.ph == "i" and mark.tid == 3
        assert outer.ph == "X" and outer.dur is not None and outer.dur >= 0
        assert outer.args == {"k": 1}

    def test_use_clock_makes_timestamps_logical(self):
        tracer = Tracer()
        steps = iter(range(100))
        with tracer.use_clock(lambda: float(next(steps))):
            tracer.instant("a")
            tracer.instant("b")
        assert [e.ts for e in tracer.events] == [0.0, 1.0]
        # The wall clock is restored afterwards.
        tracer.instant("c")
        assert tracer.events[-1].ts != 2.0

    def test_ring_buffer_drops_oldest_half(self):
        tracer = Tracer(max_events=10)
        for i in range(11):
            tracer.instant(f"e{i}")
        assert len(tracer.events) == 6  # dropped 5, appended the 11th
        assert tracer.events[0].name == "e5"
        assert tracer.events[-1].name == "e10"

    def test_tail_filters_by_tid(self):
        tracer = Tracer()
        for i in range(6):
            tracer.instant("e", tid=i % 2)
        tail = tracer.tail(2, tid=0)
        assert len(tail) == 2
        assert all(e.tid == 0 for e in tail)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("x"):
            NULL_TRACER.instant("y")
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.tail(5) == []
        assert not NULL_TRACER.enabled

    def test_coerce(self):
        assert coerce_tracer(None) is NULL_TRACER
        assert coerce_tracer(False) is NULL_TRACER
        assert isinstance(coerce_tracer(True), Tracer)
        tracer = Tracer()
        assert coerce_tracer(tracer) is tracer
        with pytest.raises(TypeError):
            coerce_tracer("yes")


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        assert registry.counters["c"].value == 3
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_histogram_percentiles_exact_for_unit_buckets(self):
        hist = Histogram()
        for value in (1, 1, 1, 2, 2, 3):
            hist.observe(value)
        assert hist.count == 6
        assert hist.mean == pytest.approx(10 / 6)
        assert hist.percentile(50) == pytest.approx(1.0)
        # 3 lands in the (2, 4] bucket; percentiles resolve to bucket bounds.
        assert hist.percentile(100) == pytest.approx(4.0)

    def test_histogram_overflow_clamps(self):
        hist = Histogram(buckets=(1, 2))
        hist.observe(99)
        assert hist.counts[-1] == 1
        assert hist.percentile(99) == 2.0

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(7)
        registry.gauge("depth").set(3.5)
        hist = registry.histogram("dist")
        for value in (1, 2, 2, 17):
            hist.observe(value)
        snap = registry.snapshot()
        json.dumps(snap)  # must be JSON-serializable
        assert MetricsRegistry.from_snapshot(snap).snapshot() == snap


class TestOverhead:
    """Disabled tracing must cost (essentially) nothing."""

    N = 1 << 20

    def _raw_pipeline(self, solver, values, plan, dtype):
        """The solve re-composed from the un-instrumented kernels."""
        table = solver.factor_table(plan, dtype)
        optimize_factors(table, solver.optimization)
        x = plan.values_per_thread
        m = table.chunk_size
        feedback = [
            b if isinstance(b, int) else float(b)
            for b in table.signature.feedback
        ]
        work = values.astype(dtype, copy=False).reshape(-1, m).copy()
        num_chunks = work.shape[0]
        if x > 1:
            thread_local_solve(
                work.reshape(num_chunks * (m // x), x), feedback, x
            )
        for width in doubling_widths(x, m):
            merge_level(
                work.reshape(num_chunks * (m // (2 * width)), 2 * width),
                table,
                width,
            )
        matrix = transition_matrix(table)
        global_ = propagate_carries(local_carries(work, table.order), matrix)
        return apply_global_correction(work, global_, table).reshape(-1)

    def test_disabled_tracer_under_5_percent(self):
        solver = PLRSolver("(1 : 0.9)")  # tracer=None -> NULL_TRACER
        # Pick an n that is a whole number of chunks so the raw pipeline
        # and the solver do identical work (no padding on either side).
        n = self.N
        for _ in range(4):
            plan = solver.plan_for(n)
            if n % plan.chunk_size == 0:
                break
            n = -(-n // plan.chunk_size) * plan.chunk_size
        assert n % plan.chunk_size == 0
        values = np.random.default_rng(0).standard_normal(n).astype(np.float32)
        dtype = np.dtype(np.float32)

        # Warm the factor cache and numpy so neither side pays it.
        baseline_out = self._raw_pipeline(solver, values, plan, dtype)
        solved = solver.solve(values, plan=plan, dtype=dtype)
        np.testing.assert_array_equal(solved, baseline_out)

        for margin_attempt in range(3):
            baseline = min(
                self._time(lambda: self._raw_pipeline(solver, values, plan, dtype))
                for _ in range(5)
            )
            instrumented = min(
                self._time(lambda: solver.solve(values, plan=plan, dtype=dtype))
                for _ in range(5)
            )
            if instrumented <= baseline * 1.05:
                return
        pytest.fail(
            f"disabled tracing cost {instrumented / baseline - 1:.1%} "
            "(must be < 5%)"
        )

    @staticmethod
    def _time(fn) -> float:
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def test_tracing_never_changes_outputs(self):
        values = np.random.default_rng(1).standard_normal(1 << 14).astype(np.float32)
        untraced = PLRSolver("(1 : 0.9)").solve(values)
        traced = PLRSolver("(1 : 0.9)", tracer=True).solve(values)
        np.testing.assert_array_equal(untraced, traced)

    def test_tracing_never_changes_simulator_outputs(self, test_gpu):
        from repro.gpusim.executor import SimulatedPLR

        rec = Recurrence.parse("(1 : 1, 1)")
        values = np.random.default_rng(2).integers(-9, 9, 2048).astype(np.int32)
        plain = SimulatedPLR(rec, test_gpu, seed=3).run(values)
        traced_tracer = Tracer()
        traced = SimulatedPLR(rec, test_gpu, seed=3, tracer=traced_tracer).run(values)
        np.testing.assert_array_equal(plain.output, traced.output)
        assert plain.schedule_steps == traced.schedule_steps
        assert len(traced_tracer.events) > 0


class TestChromeTrace:
    VALID_PHASES = {"X", "i", "C", "M"}

    def test_schema(self, test_gpu):
        from repro.gpusim.executor import SimulatedPLR

        tracer = Tracer()
        rec = Recurrence.parse("(1 : 1)")
        values = np.arange(512, dtype=np.int32)
        SimulatedPLR(rec, test_gpu, seed=0, tracer=tracer).run(values)
        trace = chrome_trace(tracer)

        json.loads(json.dumps(trace))  # serializable both ways
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = trace["traceEvents"]
        assert events, "simulated run must emit events"
        for event in events:
            assert isinstance(event["name"], str) and event["name"]
            assert event["ph"] in self.VALID_PHASES
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # Every pid present is named by an M metadata record.
        named = {
            e["pid"] for e in events if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {e["pid"] for e in events} <= named | {TracePid.HOST} or named

    def test_write_chrome_trace(self, tmp_path):
        tracer = Tracer()
        tracer.instant("only")
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["event_count"] == 1


class TestPipelineProfile:
    def test_hand_computed_4_chunk_order_2(self):
        """4 chunks, order 2: chunk1<-0 (d1), chunk2<-0 (d2), chunk3<-2 (d1)."""
        tracer = Tracer()
        ticks = iter(range(100))
        with tracer.use_clock(lambda: float(next(ticks))):
            for chunk, base in ((1, 0), (2, 0), (3, 2)):
                tracer.instant(
                    "lookback",
                    cat="sim",
                    pid=TracePid.SIM,
                    tid=chunk,
                    args={"chunk": chunk, "base": base, "distance": chunk - base},
                )
            tracer.instant("spin", cat="sim", pid=TracePid.SIM, tid=2)
            tracer.instant("spin", cat="sim", pid=TracePid.SIM, tid=2)

        profile = build_profile(
            tracer.events, signature="(1: 1, 1)", n=64, chunk_size=16, num_chunks=4
        )
        assert profile.lookback_histogram == {1: 2, 2: 1}
        assert profile.mean_lookback == pytest.approx(4 / 3)
        assert profile.max_lookback == 2
        assert profile.stall_steps_per_chunk == {2: 2}
        assert profile.total_stall_steps == 2
        # Depths: chunk0=1, chunk1=2, chunk2=2, chunk3=depth(2)+1=3.
        assert profile.critical_path_length == 3
        json.dumps(profile.to_json())

    def test_profile_simulation_deterministic(self):
        first, tracer_a, _, _ = profile_simulation("(1 : 1,1)", 4096, seed=0)
        second, tracer_b, _, _ = profile_simulation("(1 : 1,1)", 4096, seed=0)
        assert tracer_a.events == tracer_b.events
        assert first.to_json() == second.to_json()
        assert first.num_chunks == 256
        assert first.lookback_count == first.num_chunks - 1
        # Decoupled look-back must beat the serial carry chain.
        assert first.critical_path_length < first.num_chunks

    def test_profile_matches_simulator_result(self):
        profile, _, metrics, result = profile_simulation("(1 : 1)", 2048, seed=1)
        assert profile.schedule_steps == result.schedule_steps
        assert sorted(
            d for d, c in profile.lookback_histogram.items() for _ in range(c)
        ) == sorted(result.lookback_distances)
        hist = metrics.histograms["sim.lookback_distance"]
        assert hist.count == len(result.lookback_distances)

    def test_timeline_svg_renders(self):
        _, tracer, _, _ = profile_simulation("(1 : 1)", 1024, seed=0)
        svg = timeline_svg(tracer, title="test run")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "test run" in svg
        assert svg.count("<rect") > 1  # background + at least one chunk bar


class TestSolverIntegration:
    def test_solver_emits_phase_spans_and_lookbacks(self):
        tracer = Tracer()
        solver = PLRSolver("(1 : 1)", tracer=tracer)
        values = np.arange(5000, dtype=np.int64)
        out = solver.solve(values)
        np.testing.assert_array_equal(
            out, serial_full(values, solver.recurrence.signature)
        )
        names = {e.name for e in tracer.events}
        assert {"plan", "factor_table", "phase1", "phase2", "merge_level"} <= names
        lookbacks = [e for e in tracer.events if e.name == "lookback"]
        assert lookbacks and all(e.args["distance"] == 1 for e in lookbacks)

    def test_factor_cache_stats_mirror_lru(self):
        clear_factor_cache()
        solver = PLRSolver("(1 : 0.5)")
        values = np.ones(4096, dtype=np.float32)
        solver.solve(values)
        solver.solve(values)
        stats = factor_cache_stats()
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        assert stats["size"] >= 1
        gauges = global_metrics().snapshot()["gauges"]
        assert gauges["factor_cache.hits"] == stats["hits"]
        assert gauges["factor_cache.misses"] == stats["misses"]
        assert gauges["factor_cache.size"] == stats["size"]

    def test_factor_table_build_counters(self):
        from repro.core.signature import Signature
        from repro.plr.factors import CorrectionFactorTable

        registry = global_metrics()
        builds_before = registry.counter("factor_table.builds").value
        risk_before = registry.counter("factor_table.overflow_risk").value
        # rho = 1.05 at m=4096: 1.05^4095 >> float32 max, fits in float64.
        table = CorrectionFactorTable.build(
            Signature.parse("(1: 1.05)"), 4096, np.float32
        )
        assert table.overflow_risk
        assert registry.counter("factor_table.builds").value == builds_before + 1
        assert registry.counter("factor_table.overflow_risk").value == risk_before + 1


class TestSolveReportMetrics:
    def test_metrics_snapshot_round_trips_through_report(self):
        from repro.resilience.solver import ResilientSolver

        values = np.random.default_rng(5).standard_normal(512).astype(np.float32)
        solver = ResilientSolver("(1 : 1)", engine="sim", tracer=True)
        report = solver.solve_with_report(values)
        assert report.ok
        assert report.metrics is not None
        json.dumps(report.metrics)
        restored = MetricsRegistry.from_snapshot(report.metrics)
        assert restored.snapshot() == report.metrics
        assert report.metrics["counters"]["resilience.attempts"] == 1
        assert report.metrics["counters"]["sim.blocks_started"] >= 1

    def test_fault_chain_counts_and_traces(self, test_gpu):
        from repro.gpusim.faults import FaultKind, FaultPlan
        from repro.resilience.solver import FallbackPolicy, ResilientSolver

        values = np.arange(160, dtype=np.int32)
        solver = ResilientSolver(
            "(1 : 1)",
            machine=test_gpu,
            engine="sim",
            fault=FaultPlan.single(FaultKind.BIT_FLIP_CARRY, bit=30),
            policy=FallbackPolicy(max_retries=1),
            tracer=True,
        )
        report = solver.solve_with_report(values)
        assert report.ok and report.engine == "serial"
        counters = report.metrics["counters"]
        assert counters["resilience.faults_fired"] >= 1
        assert counters["resilience.attempts"] >= 3  # corrupt, corrupt, serial
        assert counters["resilience.retries"] == 1
        assert counters["resilience.serial_fallbacks"] == 1
        names = [e.name for e in solver.tracer.events]
        assert "attempt" in names and "fallback" in names


class TestDeadlockTraceTails:
    def test_deadlock_error_carries_trace_tail(self, test_gpu):
        from repro.core.errors import DeadlockError
        from repro.gpusim.executor import SimulatedPLR
        from repro.gpusim.faults import FaultKind, FaultPlan

        rec = Recurrence.parse("(1: 1)")
        values = np.arange(400, dtype=np.int32)
        sim = SimulatedPLR(
            rec,
            test_gpu,
            seed=0,
            fault=FaultPlan.single(FaultKind.DROP_GLOBAL_FLAG, chunks=(0,)),
            deadlock_rounds=60,
            tracer=Tracer(),
        )
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(values)
        err = excinfo.value
        assert err.trace_tails, "tracing was on: tails must be attached"
        for chunk_id, tail in err.trace_tails.items():
            assert all(e.tid == chunk_id for e in tail)
            assert any(e.name == "spin" for e in tail)
        assert "trace tail:" in str(err)
        assert "spin x" in str(err)  # run-compressed rendering

    def test_without_tracer_no_tails(self, test_gpu):
        from repro.core.errors import DeadlockError
        from repro.gpusim.executor import SimulatedPLR
        from repro.gpusim.faults import FaultKind, FaultPlan

        rec = Recurrence.parse("(1: 1)")
        values = np.arange(400, dtype=np.int32)
        sim = SimulatedPLR(
            rec,
            test_gpu,
            seed=0,
            fault=FaultPlan.single(FaultKind.DROP_GLOBAL_FLAG, chunks=(0,)),
            deadlock_rounds=60,
        )
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(values)
        assert excinfo.value.trace_tails == {}


class TestCli:
    def test_profile_smoke(self, tmp_path, capsys):
        """The CI smoke command: trace parses, timeline SVG is non-empty."""
        from repro.cli import main

        outdir = tmp_path / "prof"
        assert (
            main(["profile", "(1 : 1,1)", "--n", "4096", "--outdir", str(outdir)])
            == 0
        )
        trace = json.loads((outdir / "trace.json").read_text())
        assert trace["traceEvents"]
        profile = json.loads((outdir / "profile.json").read_text())
        assert profile["num_chunks"] == 256
        metrics = json.loads((outdir / "metrics.json").read_text())
        assert metrics["metrics"]["counters"]["sim.blocks_started"] == 256
        svg = (outdir / "timeline.svg").read_text()
        assert svg.startswith("<svg") and len(svg) > 1000
        out = capsys.readouterr().out
        assert "look-back" in out and "critical path" in out

    def test_trace_command(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "trace.json"
        assert (
            main(["trace", "(1 : 1)", "-n", "2048", "--engine", "solver",
                  "-o", str(path)])
            == 0
        )
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "phase1" in names and "phase2" in names

    def test_info_prints_cache_stats(self, capsys):
        from repro.cli import main

        assert main(["info", "(1: 2, -1)"]) == 0
        out = capsys.readouterr().out
        assert "factor cache" in out


class TestHistogramEdgeCases:
    """Pinned percentile/observe edge behaviour: never raises (except
    for the documented cases), never NaN, for any histogram contents."""

    def test_empty_histogram_percentiles_are_zero(self):
        hist = Histogram()
        for p in (0, 1, 50, 99, 100):
            assert hist.percentile(p) == 0.0
        assert hist.mean == 0.0

    def test_p0_returns_lower_edge_of_first_occupied_bucket(self):
        hist = Histogram(buckets=(1, 2, 4, 8))
        hist.observe(3)  # (2, 4] bucket
        assert hist.percentile(0) == 2.0
        first = Histogram(buckets=(1, 2))
        first.observe(1)
        assert first.percentile(0) == 0.0

    def test_p100_returns_upper_edge_of_last_occupied_bucket(self):
        hist = Histogram(buckets=(1, 2, 4, 8))
        hist.observe(1)
        hist.observe(3)
        assert hist.percentile(100) == 4.0

    def test_all_overflow_clamps_to_largest_bound(self):
        hist = Histogram(buckets=(1, 2))
        for _ in range(5):
            hist.observe(1000)
        for p in (0, 50, 100):
            assert hist.percentile(p) == 2.0

    def test_out_of_range_p_raises(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_nan_observation_rejected_not_poisoning(self):
        # Regression: observe(nan) used to contaminate ``total`` so that
        # ``mean`` was NaN forever after, while the observation itself
        # hid in the overflow bucket.
        hist = Histogram()
        hist.observe(2)
        with pytest.raises(ValueError, match="finite"):
            hist.observe(float("nan"))
        with pytest.raises(ValueError, match="finite"):
            hist.observe(float("inf"))
        with pytest.raises(ValueError, match="finite"):
            hist.observe(float("-inf"))
        assert hist.count == 1
        assert hist.mean == 2.0
        assert hist.percentile(100) == 2.0
