"""Documentation consistency: the docs must not drift from the code."""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme() -> str:
    return (ROOT / "README.md").read_text()


@pytest.fixture(scope="module")
def cli_commands() -> set:
    parser = build_parser()
    subparsers = next(
        a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
    )
    return set(subparsers.choices)


class TestReadme:
    def test_documented_cli_commands_exist(self, readme, cli_commands):
        documented = set(re.findall(r"^plr (\w+)", readme, re.MULTILINE))
        unknown = documented - cli_commands
        assert not unknown, f"README documents nonexistent commands: {unknown}"

    def test_all_cli_commands_documented(self, readme, cli_commands):
        for command in cli_commands:
            assert f"plr {command}" in readme, f"{command} missing from README"

    def test_mentioned_paths_exist(self, readme):
        for rel in ("DESIGN.md", "EXPERIMENTS.md", "docs/algorithm.md",
                    "docs/performance_model.md", "examples/"):
            assert (ROOT / rel.rstrip("/")).exists(), rel

    def test_quickstart_code_runs(self, readme):
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README needs a python quickstart"
        namespace: dict = {}
        exec(blocks[0], namespace)  # the quickstart must actually work

    def test_doi_cited(self, readme):
        assert "10.1145/3173162.3173168" in readme


class TestDesignAndExperiments:
    def test_design_lists_every_figure_and_table(self):
        design = (ROOT / "DESIGN.md").read_text()
        for item in ["Fig 1", "Fig 9", "Fig 10", "Table 2", "Table 3"]:
            assert item in design, item

    def test_design_module_map_paths_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for module in re.findall(r"^\s{4}(\w+\.py)\s", design, re.MULTILINE):
            hits = list((ROOT / "src").rglob(module))
            assert hits, f"DESIGN.md references missing module {module}"

    def test_experiments_covers_all_figures(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for fig in ("Figure 1", "Figures 2–3", "Figures 4–5", "Figures 6–8",
                    "Figure 9", "Figure 10", "Table 2", "Table 3"):
            assert fig in experiments, fig

    def test_experiments_regeneration_commands_valid(self, cli_commands):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for command in re.findall(r"^plr (\w+)", experiments, re.MULTILINE):
            assert command in cli_commands, command


class TestDocsDirectory:
    def test_algorithm_doc_references_real_tests(self):
        doc = (ROOT / "docs" / "algorithm.md").read_text()
        for ref in re.findall(r"`tests/(test_\w+\.py)`", doc):
            assert (ROOT / "tests" / ref).exists(), ref

    def test_performance_doc_names_real_constants(self):
        doc = (ROOT / "docs" / "performance_model.md").read_text()
        from repro.gpusim.cost import CostModel

        model = CostModel.titan_x()
        assert str(model.bandwidth_efficiency) in doc
        assert str(model.l2_bandwidth_ratio) in doc


class TestExperimentIndex:
    def test_design_bench_targets_exist(self):
        """Every bench target in DESIGN.md's experiment index is real."""
        design = (ROOT / "DESIGN.md").read_text()
        targets = re.findall(r"(benchmarks/\w+\.py|tests/\w+\.py)", design)
        assert targets, "DESIGN.md must map experiments to bench targets"
        for target in targets:
            assert (ROOT / target).exists(), target

    def test_every_figure_has_a_benchmark_file(self):
        for stem in (
            "test_fig01_prefix_sum", "test_fig02_tuple2", "test_fig03_tuple3",
            "test_fig04_order2", "test_fig05_order3", "test_fig06_lowpass1",
            "test_fig07_lowpass2", "test_fig08_lowpass3", "test_fig09_highpass",
            "test_fig10_optimizations", "test_table2_memory", "test_table3_l2",
        ):
            assert (ROOT / "benchmarks" / f"{stem}.py").exists(), stem

    def test_license_present(self):
        text = (ROOT / "LICENSE").read_text()
        assert "MIT License" in text
        assert "ASPLOS 2018" in text
