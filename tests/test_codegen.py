"""The compiler front half: IR construction and shared properties."""

import numpy as np
import pytest

from repro.codegen.compiler import PLRCompiler
from repro.codegen.ir import build_ir
from repro.core.errors import CodegenError
from repro.core.recurrence import Recurrence
from repro.plr.optimizer import OptimizationConfig


class TestIR:
    def test_dtype_defaults(self):
        ir_int = build_ir(Recurrence.parse("(1: 1)"), 1 << 16)
        assert ir_int.dtype == np.int32
        ir_float = build_ir(Recurrence.parse("(0.2: 0.8)"), 1 << 16)
        assert ir_float.dtype == np.float32

    def test_c_type_mapping(self):
        assert build_ir(Recurrence.parse("(1: 1)"), 100).c_type == "int"
        assert build_ir(Recurrence.parse("(0.2: 0.8)"), 100).c_type == "float"
        ir64 = build_ir(Recurrence.parse("(1: 1)"), 100, dtype=np.int64)
        assert ir64.c_type == "long long"

    def test_unsupported_dtype_raises(self):
        ir = build_ir(Recurrence.parse("(1: 1)"), 100, dtype=np.int16)
        with pytest.raises(CodegenError):
            _ = ir.c_type

    def test_table_matches_plan(self):
        ir = build_ir(Recurrence.parse("(1: 2, -1)"), 1 << 20)
        assert ir.table.chunk_size == ir.plan.chunk_size
        assert ir.order == 2

    def test_literals_int(self):
        ir = build_ir(Recurrence.parse("(1: 2, -1)"), 100)
        assert ir.feedback_literals() == ["2", "-1"]

    def test_literals_float_suffix(self):
        ir = build_ir(Recurrence.parse("(0.2: 0.8)"), 100)
        assert ir.feedback_literals() == ["0.8f"]
        assert all(lit.endswith("f") for lit in ir.feedforward_literals())

    def test_factor_row_literals_truncation(self):
        ir = build_ir(Recurrence.parse("(1: 2, -1)"), 100)
        lits = ir.factor_row_literals(0, 4)
        assert lits == ["2", "3", "4", "5"]


class TestCompilerFacade:
    def test_unknown_backend(self):
        with pytest.raises(CodegenError):
            PLRCompiler().compile("(1: 1)", backend="fortran")

    def test_cuda_result_not_executable(self):
        result = PLRCompiler().compile("(1: 1)", backend="cuda")
        assert not result.is_executable
        assert result.kernel is None
        assert "plr_kernel" in result.source

    def test_c_result_executable(self):
        result = PLRCompiler().compile("(1: 1)", n=10_000, backend="c")
        assert result.is_executable

    def test_emit_all_backends(self):
        sources = PLRCompiler().emit_all("(1: 2, -1)", n=50_000)
        assert set(sources) == {"cuda", "c", "python"}
        assert all(len(s) > 200 for s in sources.values())

    def test_codegen_time_recorded(self):
        result = PLRCompiler().compile("(1: 1)", backend="cuda")
        assert result.codegen_seconds > 0

    def test_optimization_config_threads_through(self):
        compiler = PLRCompiler(optimization=OptimizationConfig.disabled())
        ir = compiler.build_ir("(1: 1)", n=10_000)
        assert ir.factor_plan.config == OptimizationConfig.disabled()
