"""The multi-kernel CUDA program (the paper's code section 8)."""

import pytest

from repro.codegen.compiler import PLRCompiler
from repro.codegen.cuda import emit_cuda_program
from repro.codegen.ir import build_ir
from repro.core.recurrence import Recurrence


@pytest.fixture(scope="module")
def program() -> str:
    return PLRCompiler().compile_program("(1: 2, -1)", n=1 << 24).source


class TestStructure:
    def test_balanced(self, program):
        assert program.count("{") == program.count("}")
        assert program.count("(") == program.count(")")

    def test_default_integer_variants(self, program):
        # Powers of two below the cap, plus the cap x = 11.
        for x in (1, 2, 4, 8, 11):
            assert f"plr_kernel_x{x}" in program

    def test_float_cap_is_nine(self):
        source = PLRCompiler().compile_program("(0.2: 0.8)", n=1 << 24).source
        assert "plr_kernel_x9" in source
        assert "plr_kernel_x11" not in source

    def test_selection_rule_embedded(self, program):
        # smallest x with x * 1024 * T > n, T = 24 for 64-reg plans.
        assert "plr_select_x" in program
        assert "* 1024 * 24 > n" in program

    def test_single_factor_store(self, program):
        # "the longest list contains all needed shorter lists": one
        # array per carry, sized for the largest chunk (x = 11).
        assert program.count("__device__ const int plr_factors_0[11264]") == 1
        assert "plr_factors_0[1024]" not in program

    def test_per_kernel_constant_rebinding(self, program):
        assert program.count("#undef PLR_X") == 5
        assert "#define PLR_X 11" in program
        assert "#define PLR_M 11264" in program

    def test_host_launch_dispatch(self, program):
        assert "plr_launch(x, n, chunks" in program
        for x in (1, 2, 4, 8, 11):
            assert f"if (x == {x}) plr_kernel_x{x}" in program


class TestValidation:
    def test_custom_x_list(self):
        source = PLRCompiler().compile_program("(1: 1)", xs=(2, 5)).source
        assert "plr_kernel_x2" in source
        assert "plr_kernel_x5" in source
        assert "plr_kernel_x1" not in source

    def test_mismatched_recurrences_rejected(self):
        a = build_ir(Recurrence.parse("(1: 1)"), 1 << 16)
        b = build_ir(Recurrence.parse("(1: 2, -1)"), 1 << 16)
        with pytest.raises(ValueError):
            emit_cuda_program([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            emit_cuda_program([])

    def test_not_executable(self):
        result = PLRCompiler().compile_program("(1: 1)")
        assert not result.is_executable
