"""End-to-end trace propagation and observability through a live server.

The tentpole contract: a client-supplied trace id yields ONE connected
trace — server root span, flush span, engine group span, isolation and
resilience attempt spans, down to worker-process slab lanes — where
every parent link resolves, all under the client's trace id.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.batch.engine import BatchEngine
from repro.batch.planner import BatchPlanner
from repro.core.errors import ProtocolError
from repro.obs.exporters import chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TracePid, Tracer
from repro.serve import (
    PLRServer,
    ServeClient,
    ServeConfig,
    SolveFrame,
    parse_frame,
)

pytestmark = pytest.mark.serve


def run(coro, timeout: float = 60.0):
    import asyncio

    return asyncio.run(asyncio.wait_for(coro, timeout))


CLIENT_TRACE_ID = "feedc0de" * 4
CLIENT_SPAN_ID = "ab12" * 4


class TestProtocolTraceField:
    def test_trace_field_parses(self):
        frame = parse_frame(
            json.dumps(
                {
                    "signature": "(1: 1)",
                    "values": [1],
                    "trace": {
                        "trace_id": CLIENT_TRACE_ID,
                        "span_id": CLIENT_SPAN_ID,
                    },
                }
            )
        )
        assert isinstance(frame, SolveFrame)
        assert frame.trace["trace_id"] == CLIENT_TRACE_ID

    @pytest.mark.parametrize(
        "trace",
        [
            "abc",  # not an object
            {},  # missing trace_id
            {"trace_id": "NOPE"},  # bad hex
            {"trace_id": "ab", "span_id": "UPPER"},
        ],
    )
    def test_malformed_trace_rejected(self, trace):
        with pytest.raises(ProtocolError):
            parse_frame(
                json.dumps(
                    {"signature": "(1: 1)", "values": [1], "trace": trace}
                )
            )

    def test_slo_op_and_metrics_format(self):
        assert parse_frame('{"op": "slo"}').op == "slo"
        frame = parse_frame('{"op": "metrics", "format": "prometheus"}')
        assert frame.format == "prometheus"
        with pytest.raises(ProtocolError):
            parse_frame('{"op": "metrics", "format": "xml"}')
        with pytest.raises(ProtocolError):
            parse_frame('{"op": "ping", "format": "prometheus"}')


def traced_server(**overrides):
    """A server whose engine isolates through the process backend."""
    overrides.setdefault("min_bucket", 16)
    overrides.setdefault("flush_ms", 2.0)
    tracer = Tracer()
    metrics = MetricsRegistry()
    config = ServeConfig(**overrides)
    engine = BatchEngine(
        planner=BatchPlanner(
            min_bucket=config.min_bucket, max_batch=config.max_batch
        ),
        metrics=metrics,
        tracer=tracer,
        backend="process",
        workers=2,
    )
    return PLRServer(config, engine=engine, metrics=metrics, tracer=tracer), tracer


class TestEndToEndTracePropagation:
    def test_client_trace_spans_server_to_worker_lanes(self, tmp_path):
        """The acceptance walk: serve a request whose group pass must
        fall back to per-request isolation (lossy integer coefficients)
        with a process-pool solver, then verify the exported trace is
        one tree under the client's trace id."""

        async def scenario():
            server, tracer = traced_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                # (1: 0.5) on int32 cannot ride the integer batch path:
                # the engine isolates it and the resilience chain
                # promotes to float64 — through backend="process", which
                # fans out to worker processes at this length.
                reply = await client.solve(
                    "(1: 0.5)",
                    list(range(1, 4097)),
                    dtype="int32",
                    request_id="e2e",
                    trace={
                        "trace_id": CLIENT_TRACE_ID,
                        "span_id": CLIENT_SPAN_ID,
                    },
                    timeout=60,
                )
                await client.close()
            finally:
                await server.aclose()
            return reply, tracer

        reply, tracer = run(scenario(), timeout=90.0)
        assert reply is not None and reply["ok"], reply
        assert reply["trace_id"] == CLIENT_TRACE_ID
        assert any("float64" in d for d in reply.get("degradations", ()))

        linked = [
            e
            for e in tracer.events
            if e.link is not None and e.link.trace_id == CLIENT_TRACE_ID
        ]
        names = {e.name for e in linked}
        # Every layer contributed spans to the one trace: server root,
        # flush, engine group + isolation, resilience chain, solver
        # stages, worker lanes.
        assert "serve_request" in names
        assert "serve_flush" in names
        assert "batch_group" in names and "isolate" in names
        assert "resilient_solve" in names and "attempt" in names
        assert {"phase1_shards", "phase1_slab", "phase2_slab"} <= names

        # The root is parented to the CLIENT's span, nothing else is
        # orphaned: walking parent links connects every span.
        span_ids = {e.link.span_id for e in linked}
        roots = [e for e in linked if e.name == "serve_request"]
        assert len(roots) == 1
        assert roots[0].link.parent_id == CLIENT_SPAN_ID
        orphans = [
            e.name
            for e in linked
            if e.link.parent_id is not None
            and e.link.parent_id not in span_ids
            and e.name != "serve_request"
        ]
        assert orphans == []

        # Worker lanes really crossed the process boundary.
        assert any(e.pid >= TracePid.WORKER_BASE for e in linked)

        # And the whole thing exports as a Perfetto-loadable Chrome
        # trace whose args carry the ids.
        doc = chrome_trace(tracer)
        exported = [
            ev
            for ev in doc["traceEvents"]
            if ev.get("args", {}).get("trace_id") == CLIENT_TRACE_ID
        ]
        assert {ev["name"] for ev in exported} == names
        for ev in exported:
            assert "span_id" in ev["args"]

    def test_minted_trace_when_client_sends_none(self):
        async def scenario():
            server, tracer = traced_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                replies = [
                    await client.solve(
                        "(1: 1)", [1, 2, 3], request_id=i, timeout=30
                    )
                    for i in range(2)
                ]
                await client.close()
            finally:
                await server.aclose()
            return replies

        replies = run(scenario())
        ids = {r["trace_id"] for r in replies}
        assert all(r["ok"] for r in replies)
        assert len(ids) == 2  # fresh trace per request
        assert all(len(t) == 32 for t in ids)

    def test_multi_request_flush_links_member_traces(self):
        """Two traced requests coalescing into one flush: the flush span
        gets its own trace with both members as span links, while each
        request's root span stays in its own trace."""

        async def scenario():
            # A long flush window so both requests ride one flush.
            server, tracer = traced_server(flush_ms=200.0, max_batch=8)
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                t1, t2 = "aa" * 16, "bb" * 16
                await client.send(
                    {
                        "id": 1,
                        "signature": "(1: 1)",
                        "values": [1, 2],
                        "trace": {"trace_id": t1},
                    }
                )
                await client.send(
                    {
                        "id": 2,
                        "signature": "(1: 1)",
                        "values": [3, 4],
                        "trace": {"trace_id": t2},
                    }
                )
                r1 = await client.recv(timeout=30)
                r2 = await client.recv(timeout=30)
                await client.close()
            finally:
                await server.aclose()
            return (t1, t2), (r1, r2), tracer

        (t1, t2), replies, tracer = run(scenario())
        assert all(r and r["ok"] for r in replies)
        flushes = [
            e
            for e in tracer.events
            if e.name == "serve_flush" and e.args and e.args.get("batch") == 2
        ]
        (flush,) = flushes
        assert flush.link is not None
        assert flush.link.trace_id not in (t1, t2)
        assert sorted(flush.args["linked_traces"]) == sorted((t1, t2))
        # Each request still owns its root span in its own trace.
        root_ids = {
            e.link.trace_id
            for e in tracer.events
            if e.name == "serve_request" and e.link is not None
        }
        assert {t1, t2} <= root_ids


class TestServeObservability:
    def test_slo_op_reports_attainment_and_burn(self):
        async def scenario():
            server, _ = traced_server(
                slo_latency_ms=10_000.0, slo_target=0.5
            )
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                assert (await client.solve("(1: 1)", [1, 2], request_id=1))["ok"]
                bad = await client.solve(
                    "(1: 1)", [1], deadline_ms=0, request_id=2
                )
                assert bad["error"] == "DeadlineExceeded"
                reply = await client.slo()
                await client.close()
            finally:
                await server.aclose()
            return reply

        reply = run(scenario())
        slo = reply["slo"]
        assert slo["total"] == 2 and slo["good"] == 1
        assert slo["attainment"] == pytest.approx(0.5)
        assert slo["objective"]["target"] == 0.5
        assert [w["window_s"] for w in slo["windows"]] == [300.0, 3600.0]

    def test_prometheus_metrics_over_the_wire(self):
        async def scenario():
            server, _ = traced_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                assert (await client.solve("(1: 1)", [1], request_id=1))["ok"]
                reply = await client.metrics(format="prometheus")
                await client.close()
            finally:
                await server.aclose()
            return reply

        reply = run(scenario())
        assert reply["ok"] and reply["format"] == "prometheus"
        body = reply["body"]
        assert "# TYPE serve_admitted_total counter" in body
        assert 'serve_latency_ms_bucket{le="+Inf"} 1' in body
        assert "serve_latency_ms_count 1" in body

    def test_trace_log_head_zero_keeps_only_errors(self, tmp_path):
        path = tmp_path / "requests.jsonl"

        async def scenario():
            server, _ = traced_server(
                trace_log_path=str(path), trace_head_rate=0.0
            )
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                assert (await client.solve("(1: 1)", [1, 2], request_id=1))["ok"]
                bad = await client.solve(
                    "(1: 1)", [1], deadline_ms=0, request_id=2
                )
                assert not bad["ok"]
                metrics = await client.metrics()
                await client.drain()
                await server._drained.wait()
                await client.close()
            finally:
                await server.aclose()
            return metrics

        metrics = run(scenario())
        stats = metrics["serving"]["tracing"]["trace_log"]
        assert stats["written"] == 1 and stats["suppressed"] == 1
        entries = [json.loads(l) for l in path.read_text().splitlines()]
        (entry,) = entries
        assert entry["ok"] is False and entry["sampled"] == "error"
        assert entry["error"] == "DeadlineExceeded"

    def test_custom_latency_buckets_flow_into_histogram(self):
        async def scenario():
            server, _ = traced_server(latency_buckets_ms=(1.0, 10.0, 100.0))
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                assert (await client.solve("(1: 1)", [1], request_id=1))["ok"]
                reply = await client.metrics()
                await client.close()
            finally:
                await server.aclose()
            return reply

        reply = run(scenario())
        hist = reply["metrics"]["histograms"]["serve.latency_ms"]
        assert hist["buckets"] == [1.0, 10.0, 100.0]
        assert hist["count"] == 1

    def test_bad_latency_buckets_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(latency_buckets_ms=())
        with pytest.raises(ValueError):
            ServeConfig(latency_buckets_ms=(5.0, 1.0))

    def test_engine_outputs_identical_with_tracing_on(self):
        """Tracing must observe, never perturb: same queue, same outputs
        with and without a tracer + contexts."""
        rng = np.random.default_rng(5)
        values = rng.integers(-50, 50, size=200).astype(np.int32)

        async def outputs(tracer):
            server, _ = (
                traced_server()
                if tracer
                else (
                    PLRServer(
                        ServeConfig(min_bucket=16, flush_ms=2.0)
                    ),
                    None,
                )
            )
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                reply = await client.solve(
                    "(1: 2, -1)", values.tolist(), request_id=1, timeout=30
                )
                await client.close()
            finally:
                await server.aclose()
            return reply["output"]

        assert run(outputs(True)) == run(outputs(False))
