"""n-nacci correction factors: the core math of Section 2.1."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nnacci import (
    carry_seed,
    carry_transition_matrix,
    correction_factor_matrix,
    correction_factors,
    nnacci,
    solved_correction_factors,
)
from repro.core.signature import Signature


class TestSeeds:
    def test_first_order(self):
        assert carry_seed(1, 0) == (1,)

    def test_second_order(self):
        # Paper: "0, 1" for the w[m-1] carry, "1, 0" for w[m-2].
        assert carry_seed(2, 0) == (0, 1)
        assert carry_seed(2, 1) == (1, 0)

    def test_third_order(self):
        assert carry_seed(3, 0) == (0, 0, 1)
        assert carry_seed(3, 1) == (0, 1, 0)
        assert carry_seed(3, 2) == (1, 0, 0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            carry_seed(2, 2)
        with pytest.raises(ValueError):
            carry_seed(2, -1)


class TestNnacci:
    def test_fibonacci(self):
        # (1: 1, 1)'s factors are the Fibonacci numbers (Section 2.1).
        assert nnacci((1, 1), (0, 1), 8) == [1, 2, 3, 5, 8, 13, 21, 34]

    def test_shifted_fibonacci(self):
        # The second Fibonacci sequence, seeded "1, 0": shifted by one.
        assert nnacci((1, 1), (1, 0), 8) == [1, 1, 2, 3, 5, 8, 13, 21]

    def test_tribonacci_oeis_a000073(self):
        # Seed "0, 0, 1" gives the Tribonacci numbers A000073 tail.
        assert nnacci((1, 1, 1), (0, 0, 1), 8) == [1, 2, 4, 7, 13, 24, 44, 81]

    def test_tribonacci_middle_sequence_differs(self):
        # The paper: the middle sequence (seed "0, 1, 0") is "entirely
        # different" (OEIS A001590 vs A000073).
        middle = nnacci((1, 1, 1), (0, 1, 0), 8)
        first = nnacci((1, 1, 1), (0, 0, 1), 8)
        assert middle != first
        # A001590 continues 0, 1, 0 with 1, 2, 3, 6, 11, 20, 37, 68.
        assert middle == [1, 2, 3, 6, 11, 20, 37, 68]

    def test_12_fibonacci(self):
        # "(1: 1, 2) results in the so called (1,2)-Fibonacci sequence."
        # F(n) = F(n-1) + 2 F(n-2) continuing the seed 0, 1.
        seq = nnacci((1, 2), (0, 1), 6)
        assert seq == [1, 3, 5, 11, 21, 43]

    def test_geometric_first_order(self):
        # (1: d): factors are d, d^2, d^3, ... (Section 2.1).
        assert nnacci((3,), (1,), 5) == [3, 9, 27, 81, 243]

    def test_float_coefficients(self):
        seq = nnacci((0.5,), (1.0,), 4)
        assert seq == pytest.approx([0.5, 0.25, 0.125, 0.0625])

    def test_fraction_exactness(self):
        seq = nnacci((Fraction(1, 2),), (Fraction(1),), 3)
        assert seq == [Fraction(1, 2), Fraction(1, 4), Fraction(1, 8)]

    def test_zero_length(self):
        assert nnacci((1,), (1,), 0) == []

    def test_bad_seed_length(self):
        with pytest.raises(ValueError):
            nnacci((1, 1), (1,), 4)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            nnacci((1,), (1,), -1)


class TestPaperWorkedExample:
    """Section 2.3: (1: 2, -1) with m = 8."""

    SIG = Signature.parse("(1: 2, -1)")

    def test_list_one(self):
        assert correction_factors(self.SIG, 0, 8) == [2, 3, 4, 5, 6, 7, 8, 9]

    def test_list_two(self):
        assert correction_factors(self.SIG, 1, 8) == [-1, -2, -3, -4, -5, -6, -7, -8]

    def test_transition_matrix_m8(self):
        # "24 = 44 + 8*8 + -7*12 and 16 = 40 + 9*8 + -8*12": the factors
        # at the last two positions form the hop matrix.
        matrix = carry_transition_matrix(self.SIG, 8)
        assert matrix == [[9, -8], [8, -7]]

    def test_transition_matrix_reproduces_paper_hop(self):
        matrix = np.array(carry_transition_matrix(self.SIG, 8))
        # Chunk 2's local carries are (40, 44) at offsets m-1, m-2; the
        # previous chunk's global carries are (8, 12).
        local = np.array([40, 44])
        prev = np.array([8, 12])
        out = local + matrix @ prev
        assert out.tolist() == [16, 24]


class TestSecondOrderSymbolic:
    def test_paper_symbolic_factors(self):
        # Section 2.1 lists (1: d, e) factors for w[m-1]:
        # d, d^2+e, d^3+2de, d^4+3d^2e+e^2 ...
        d, e = Fraction(3), Fraction(5)
        factors = nnacci((d, e), (0, 1), 4)
        assert factors[0] == d
        assert factors[1] == d * d + e
        assert factors[2] == d**3 + 2 * d * e
        assert factors[3] == d**4 + 3 * d * d * e + e * e

    def test_paper_symbolic_factors_second_carry(self):
        # For w[m-2]: e, de, d^2e+e^2, d^3e+2de^2, ...
        d, e = Fraction(3), Fraction(5)
        factors = nnacci((d, e), (1, 0), 4)
        assert factors[0] == e
        assert factors[1] == d * e
        assert factors[2] == d * d * e + e * e
        assert factors[3] == d**3 * e + 2 * d * e * e


@settings(max_examples=60, deadline=None)
@given(
    order=st.integers(1, 4),
    coeffs=st.data(),
    length=st.integers(1, 24),
)
def test_nnacci_matches_solved_equations(order, coeffs, length):
    """The fast n-nacci run equals the slow symbolic derivation.

    The paper says it initially derived the factors by solving the
    correction equations and later replaced that with the n-nacci
    generation; both must agree for every recurrence.
    """
    feedback = tuple(
        coeffs.draw(
            st.integers(-5, 5).filter(lambda v: True), label=f"b{j}"
        )
        for j in range(order)
    )
    if feedback[-1] == 0:
        feedback = feedback[:-1] + (1,)
    sig = Signature((1,), feedback)
    for carry in range(order):
        fast = correction_factors(sig, carry, length)
        slow = solved_correction_factors(sig, carry, length)
        assert [Fraction(v) for v in fast] == slow


@settings(max_examples=30, deadline=None)
@given(chunk=st.integers(2, 64))
def test_transition_matrix_equals_factor_tail(chunk):
    """M[r][j] is factor list j at offset chunk-1-r, for any chunk size."""
    sig = Signature.parse("(1: 2, -1)")
    matrix = carry_transition_matrix(sig, chunk)
    for j in range(2):
        factors = correction_factors(sig, j, chunk)
        for r in range(2):
            assert matrix[r][j] == factors[chunk - 1 - r]


class TestFactorMatrix:
    def test_int32_wraparound(self):
        # Fibonacci factors overflow int32 around index 45; the matrix
        # must wrap like the GPU's 32-bit arithmetic, not raise.
        sig = Signature.parse("(1: 1, 1)")
        matrix = correction_factor_matrix(sig, 60, np.int32)
        assert matrix.dtype == np.int32
        exact = correction_factors(sig, 0, 60)
        wrapped = ((int(exact[59]) + 2**31) % 2**32) - 2**31
        assert int(matrix[0, 59]) == wrapped
        assert int(exact[59]) != wrapped  # it really did overflow

    def test_float_matrix(self):
        sig = Signature.parse("(1: 0.5)")
        matrix = correction_factor_matrix(sig, 6, np.float64)
        np.testing.assert_allclose(matrix[0], 0.5 ** np.arange(1, 7))

    def test_shape(self):
        sig = Signature.parse("(1: 1, 2, 3)")
        assert correction_factor_matrix(sig, 10, np.int64).shape == (3, 10)


def test_transition_matrix_chunk_too_small():
    with pytest.raises(ValueError):
        carry_transition_matrix(Signature.parse("(1: 1, 1)"), 1)
