"""Cross-component property tests: one recurrence, every engine.

These pit all the independent implementations against each other on
randomly generated recurrences and inputs: the serial oracle, the
numpy solver, the generated Python kernel, the generated C kernel, the
functional GPU simulator, and (where supported) the Scan baseline.
They are the reproduction's strongest correctness statement — six
codebases computing the same thing six different ways.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.core.ztransform import cascade, impulse_response
from repro.gpusim.executor import SimulatedPLR
from repro.gpusim.spec import MachineSpec
from repro.plr.solver import PLRSolver
from repro.plr.streaming import StreamingSolver


def random_integer_signature(data) -> Signature:
    order = data.draw(st.integers(1, 3), label="order")
    feedback = [data.draw(st.integers(-3, 3), label=f"b{j}") for j in range(order)]
    if feedback[-1] == 0:
        feedback[-1] = 1
    p = data.draw(st.integers(0, 2), label="p")
    feedforward = [data.draw(st.integers(-2, 2), label=f"a{j}") for j in range(p + 1)]
    if all(a == 0 for a in feedforward):
        feedforward[0] = 1
    if feedforward[-1] == 0:
        feedforward[-1] = 1
    return Signature(tuple(feedforward), tuple(feedback))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
@given(data=st.data(), n=st.integers(1, 1200), seed=st.integers(0, 2**20))
def test_solver_simulator_streaming_agree(data, n, seed):
    """Solver == GPU simulator == streaming, for random recurrences."""
    signature = random_integer_signature(data)
    recurrence = Recurrence(signature)
    gen = np.random.default_rng(seed)
    values = gen.integers(-8, 8, n).astype(np.int32)
    expected = serial_full(values, signature)

    solver_out = PLRSolver(recurrence).solve(values)
    np.testing.assert_array_equal(solver_out, expected)

    sim = SimulatedPLR(recurrence, MachineSpec.small_test_gpu(), seed=seed % 7)
    np.testing.assert_array_equal(sim.run(values).output, expected)

    stream = StreamingSolver(recurrence)
    cut = n // 2
    stream_out = np.concatenate([stream.push(values[:cut]), stream.push(values[cut:])])
    np.testing.assert_array_equal(stream_out, expected)


@settings(max_examples=10, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**20))
def test_generated_kernels_agree(data, seed):
    """Generated C and Python kernels match the oracle (random sigs)."""
    signature = random_integer_signature(data)
    recurrence = Recurrence(signature)
    gen = np.random.default_rng(seed)
    values = gen.integers(-8, 8, 5000).astype(np.int32)
    expected = serial_full(values, signature)

    compiler = PLRCompiler()
    c_kernel = compiler.compile(recurrence, n=5000, backend="c").kernel
    np.testing.assert_array_equal(c_kernel(values), expected)
    py_kernel = compiler.compile(recurrence, n=5000, backend="python").kernel
    np.testing.assert_array_equal(py_kernel(values), expected)


@settings(max_examples=20, deadline=None)
@given(
    pole_a=st.floats(0.05, 0.95),
    pole_b=st.floats(0.05, 0.95),
    length=st.integers(1, 200),
)
def test_cascade_impulse_response_is_convolution(pole_a, pole_b, length):
    """h_{A∘B} = h_A * h_B — the z-transform cascade is semantically
    a convolution of impulse responses."""
    from repro.core.coefficients import single_pole_low_pass

    a = single_pole_low_pass(pole_a)
    b = single_pole_low_pass(pole_b)
    combined = cascade(a, b)
    h_combined = impulse_response(combined, length)
    h_a = impulse_response(a, length)
    h_b = impulse_response(b, length)
    h_conv = np.convolve(h_a, h_b)[:length]
    np.testing.assert_allclose(h_combined, h_conv, rtol=1e-9, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 400),
    scale=st.floats(0.1, 0.9),
    seed=st.integers(0, 2**16),
)
def test_stable_filter_output_is_bounded(n, scale, seed):
    """BIBO stability: a stable filter's output on bounded input is
    bounded by the input bound times the impulse-response l1 norm."""
    from repro.core.coefficients import single_pole_low_pass

    sig = single_pole_low_pass(scale)
    gen = np.random.default_rng(seed)
    values = gen.uniform(-1.0, 1.0, n).astype(np.float64)
    out = PLRSolver(Recurrence(sig)).solve(values, dtype=np.float64)
    # l1 norm of the impulse response: (1-x) * sum x^i = 1.
    assert np.all(np.abs(out) <= 1.0 + 1e-9)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 2000), seed=st.integers(0, 2**16))
def test_prefix_sum_linearity(n, seed):
    """Prefix sums are linear: scan(a + b) == scan(a) + scan(b)."""
    gen = np.random.default_rng(seed)
    a = gen.integers(-50, 50, n).astype(np.int64)
    b = gen.integers(-50, 50, n).astype(np.int64)
    solver = PLRSolver("(1: 1)")
    lhs = solver.solve(a + b)
    rhs = solver.solve(a) + solver.solve(b)
    np.testing.assert_array_equal(lhs, rhs)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 1500), seed=st.integers(0, 2**16))
def test_prefix_sum_inverse_is_difference(n, seed):
    """diff(scan(x)) == x: the recurrence and the FIR (1, -1: 1)-style
    difference are mutually inverse."""
    gen = np.random.default_rng(seed)
    values = gen.integers(-9, 9, n).astype(np.int64)
    scanned = PLRSolver("(1: 1)").solve(values)
    recovered = np.diff(scanned, prepend=np.int64(0))
    np.testing.assert_array_equal(recovered, values)


@settings(max_examples=10, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**16))
def test_scan_baseline_agrees_on_general_recurrences(data, seed):
    """Blelloch Scan (matrix encoding) matches PLR on recurrences
    no other baseline supports."""
    from repro.baselines import BlellochScan

    signature = random_integer_signature(data)
    recurrence = Recurrence(signature)
    gen = np.random.default_rng(seed)
    values = gen.integers(-5, 5, 600).astype(np.int64)
    scan_out = BlellochScan().compute(values, recurrence)
    solver_out = PLRSolver(recurrence).solve(values, dtype=np.int64)
    np.testing.assert_array_equal(scan_out, solver_out)
