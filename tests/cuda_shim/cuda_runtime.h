/* A CUDA-runtime shim for host-compiler validation of generated code.
 *
 * There is no nvcc in this environment, but the emitted CUDA should
 * still be *compilable* — syntax errors, type errors, undeclared
 * identifiers, and malformed templates must not hide behind "we can't
 * run it anyway".  This header stubs the CUDA keywords, builtins, and
 * runtime entry points with just enough semantics that a host C++
 * compiler can type-check a PLR translation unit end to end
 * (g++ -fsyntax-only -include cuda_shim_prelude.h).
 *
 * Nothing here executes meaningfully; it exists purely so the
 * compiler front end can do its job.
 */
#ifndef PLR_TEST_CUDA_RUNTIME_SHIM_H
#define PLR_TEST_CUDA_RUNTIME_SHIM_H

#include <cstddef>
#include <cstdlib>

/* ---- CUDA keywords become no-ops for the host compiler ---- */
#define __global__
#define __device__
#define __host__
#define __forceinline__ inline
#define __shared__ static
#define __restrict__
#define __constant__

/* ---- kernel launch syntax: foo<<<g, b>>>(args) cannot be parsed by
 * a host compiler, so the validation harness rewrites `<<<...>>>` to a
 * plain call marker before compiling (see tests/test_cuda_compiles.py).
 */

/* ---- built-in thread coordinates ---- */
struct plr_shim_dim3 {
    unsigned int x, y, z;
};
static plr_shim_dim3 threadIdx = {0u, 0u, 0u};
static plr_shim_dim3 blockIdx = {0u, 0u, 0u};
static plr_shim_dim3 blockDim = {1u, 1u, 1u};
static plr_shim_dim3 gridDim = {1u, 1u, 1u};

/* ---- synchronization and fences ---- */
static inline void __syncthreads() {}
static inline void __syncwarp(unsigned mask = 0xffffffffu) { (void)mask; }
static inline void __threadfence() {}

/* ---- warp primitives ---- */
template <typename T>
static inline T __shfl_sync(unsigned mask, T var, int src, int width = 32) {
    (void)mask;
    (void)src;
    (void)width;
    return var;
}
static inline unsigned __ballot_sync(unsigned mask, int predicate) {
    (void)mask;
    return predicate ? 1u : 0u;
}
static inline int __ffs(unsigned v) {
    for (int i = 0; i < 32; i++)
        if (v & (1u << i)) return i + 1;
    return 0;
}

/* ---- atomics ---- */
static inline unsigned atomicAdd(unsigned *address, unsigned val) {
    unsigned old = *address;
    *address += val;
    return old;
}
static inline int atomicAdd(int *address, int val) {
    int old = *address;
    *address += val;
    return old;
}
static inline int atomicExch(int *address, int val) {
    int old = *address;
    *address = val;
    return old;
}

/* ---- runtime API ---- */
typedef int cudaError_t;
enum { cudaSuccess = 0 };
enum cudaMemcpyKind {
    cudaMemcpyHostToDevice,
    cudaMemcpyDeviceToHost,
    cudaMemcpyDeviceToDevice
};
typedef struct plr_shim_event *cudaEvent_t;

template <typename T>
static inline cudaError_t cudaMalloc(T **ptr, size_t bytes) {
    *ptr = static_cast<T *>(std::malloc(bytes));
    return cudaSuccess;
}
static inline cudaError_t cudaFree(void *ptr) {
    std::free(ptr);
    return cudaSuccess;
}
static inline cudaError_t cudaMemcpy(void *dst, const void *src, size_t bytes,
                                     cudaMemcpyKind kind) {
    (void)dst;
    (void)src;
    (void)bytes;
    (void)kind;
    return cudaSuccess;
}
static inline cudaError_t cudaMemset(void *ptr, int value, size_t bytes) {
    (void)ptr;
    (void)value;
    (void)bytes;
    return cudaSuccess;
}
template <typename T>
static inline cudaError_t cudaMemcpyToSymbol(T &symbol, const void *src,
                                             size_t bytes) {
    (void)symbol;
    (void)src;
    (void)bytes;
    return cudaSuccess;
}
static inline cudaError_t cudaEventCreate(cudaEvent_t *event) {
    *event = nullptr;
    return cudaSuccess;
}
static inline cudaError_t cudaEventRecord(cudaEvent_t event) {
    (void)event;
    return cudaSuccess;
}
static inline cudaError_t cudaEventSynchronize(cudaEvent_t event) {
    (void)event;
    return cudaSuccess;
}
static inline cudaError_t cudaEventElapsedTime(float *ms, cudaEvent_t a,
                                               cudaEvent_t b) {
    (void)a;
    (void)b;
    *ms = 0.0f;
    return cudaSuccess;
}

#endif /* PLR_TEST_CUDA_RUNTIME_SHIM_H */
