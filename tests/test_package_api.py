"""The public package surface: imports, star-exports, doctests."""

import doctest

import numpy as np
import pytest


def test_star_import_is_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)
    assert "PLRSolver" in namespace
    assert "Signature" in namespace
    assert "table1_signatures" in namespace


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.core",
        "repro.plr",
        "repro.codegen",
        "repro.gpusim",
        "repro.baselines",
        "repro.eval",
    ],
)
def test_all_exports_resolve(module_name):
    import importlib

    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} in __all__ but missing"


def test_version_is_set():
    import repro

    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize(
    "module_name",
    ["repro.plr.streaming", "repro.core.signature", "repro.plr.semiring"],
)
def test_doctests_pass(module_name):
    import importlib

    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0


def test_package_docstring_quickstart():
    import repro

    assert "PLRSolver" in repro.__doc__
