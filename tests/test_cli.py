"""The plr command-line tool."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestCompileCommand:
    def test_cuda_to_stdout(self, capsys):
        assert main(["compile", "(1: 2, -1)"]) == 0
        out = capsys.readouterr().out
        assert "plr_kernel" in out
        assert "__global__" in out

    def test_write_to_file(self, tmp_path, capsys):
        path = tmp_path / "kernel.cu"
        assert main(["compile", "(1: 1)", "-o", str(path)]) == 0
        assert "plr_kernel" in path.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_python_backend(self, capsys):
        assert main(["compile", "(1: 1)", "--backend", "python"]) == 0
        assert "def compute" in capsys.readouterr().out

    def test_bad_signature_is_clean_error(self, capsys):
        assert main(["compile", "(1: )"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRunCommand:
    def test_solver_backend(self, capsys):
        assert main(["run", "(1: 1)", "-n", "50000"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_c_backend(self, capsys):
        assert main(["run", "(1: 2, -1)", "-n", "30000", "--backend", "c"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_python_backend(self, capsys):
        assert main(["run", "(0.2: 0.8)", "-n", "20000", "--backend", "python"]) == 0
        assert "OK" in capsys.readouterr().out


class TestInfoCommand:
    def test_reports_plan_and_decisions(self, capsys):
        assert main(["info", "(1: 2, -1)"]) == 0
        out = capsys.readouterr().out
        assert "higher_order_prefix_sum" in out
        assert "buffered_array" in out
        assert "m=" in out

    def test_filter_shows_cutoff(self, capsys):
        assert main(["info", "(0.2: 0.8)"]) == 0
        out = capsys.readouterr().out
        assert "truncated" in out
        assert "cutoff=" in out


class TestFactorsCommand:
    def test_paper_example(self, capsys):
        assert main(["factors", "(1: 2, -1)", "-m", "8"]) == 0
        out = capsys.readouterr().out
        assert "2, 3, 4, 5, 6, 7, 8, 9" in out
        assert "-1, -2, -3, -4, -5, -6, -7, -8" in out


class TestFiguresAndTables:
    def test_single_figure(self, capsys):
        assert main(["figures", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Prefix-sum throughput" in out
        assert "memcpy" in out

    def test_fig10(self, capsys):
        assert main(["figures", "fig10"]) == 0
        assert "optimizations" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "fig99"]) == 2

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "(1: 1)"])
        assert args.n == 1 << 20
        assert args.backend == "solver"

    def test_cuda_not_runnable(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "(1: 1)", "--backend", "cuda"])


class TestCalibrationCommand:
    def test_all_anchors_pass(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "memcpy plateau" in out
        assert "NO" not in out


class TestExportCommand:
    def test_writes_bundle(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "data")]) == 0
        out = capsys.readouterr().out
        assert "manifest.json" in out
        assert (tmp_path / "data" / "fig1.csv").exists()
        assert (tmp_path / "data" / "table3_l2.csv").exists()


class TestSimulateCommand:
    def test_healthy_run(self, capsys):
        assert main(["simulate", "(1: 2, -1)", "-n", "800"]) == 0
        out = capsys.readouterr().out
        assert "look-back" in out
        assert "OK" in out

    def test_fault_deadlock_reported(self, capsys):
        assert main(["simulate", "(1: 1)", "--fault", "never_publish"]) == 1
        assert "deadlock" in capsys.readouterr().out

    def test_fault_fence_corruption_reported(self, capsys):
        code = main(["simulate", "(1: 1)", "-n", "900", "--fault", "flag_before_data"])
        out = capsys.readouterr().out
        # The race fires under essentially every schedule at this size.
        assert code == 1
        assert "MISMATCH" in out

    def test_generalized_fault_kind_accepted(self, capsys):
        assert main(["simulate", "(1: 1)", "-n", "400", "--fault", "abort_restart"]) == 0
        out = capsys.readouterr().out
        assert "restarts" in out
        assert "OK" in out

    def test_unknown_fault_is_clean_error(self, capsys):
        assert main(["simulate", "(1: 1)", "--fault", "meteor_strike"]) == 2
        assert "error:" in capsys.readouterr().err


class TestChaosCommand:
    def test_small_sweep_holds_invariant(self, capsys):
        assert main(["chaos", "--cases", "25", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "25 cases" in out
        assert "invariant held" in out

    def test_recurrence_filter(self, capsys):
        assert main(
            ["chaos", "--cases", "10", "--recurrence", "prefix_sum"]
        ) == 0
        assert "10 cases" in capsys.readouterr().out

    def test_unknown_recurrence_is_clean_error(self, capsys):
        assert main(["chaos", "--cases", "1", "--recurrence", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestBatchCommand:
    def _write_queue(self, tmp_path, lines):
        path = tmp_path / "queue.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_mixed_queue_smoke(self, tmp_path, capsys):
        import json

        queue = self._write_queue(
            tmp_path,
            [
                '{"id": "sum", "signature": "(1: 1)", "values": [1, 2, 3, 4]}',
                '{"id": "filt", "signature": "(0.2: 0.8)", "values": [1.0, 0.0]}',
                '{"id": "empty", "signature": "(1: 1)", "values": []}',
            ],
        )
        out_path = tmp_path / "results.jsonl"
        assert main(["batch", queue, "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "3 requests" in out
        results = {
            record["id"]: record
            for record in map(json.loads, out_path.read_text().splitlines())
        }
        assert results["sum"]["output"] == [1, 3, 6, 10]
        assert results["sum"]["engine"] == "batch"
        assert results["empty"]["output"] == []
        assert results["empty"]["engine"] == "empty"
        np.testing.assert_allclose(
            results["filt"]["output"], [0.2, 0.16], rtol=1e-5
        )

    def test_isolated_request_reported(self, tmp_path, capsys):
        queue = self._write_queue(
            tmp_path,
            [
                '{"id": "ok", "signature": "(1: 1)", "values": [1, 1]}',
                '{"id": "lossy", "signature": "(1: 0.5)", "values": [1, 2], '
                '"dtype": "int32"}',
            ],
        )
        assert main(["batch", queue]) == 0
        out = capsys.readouterr().out
        assert "1 isolated" in out
        assert "float64" in out

    def test_unreadable_input_is_one_line_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["batch", missing]) == 2
        captured = capsys.readouterr()
        err_lines = [line for line in captured.err.splitlines() if line]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error:")
        assert "Traceback" not in captured.err

    def test_malformed_signature_names_the_line(self, tmp_path, capsys):
        queue = self._write_queue(
            tmp_path, ['{"id": "x", "signature": "(1: junk", "values": [1]}']
        )
        assert main(["batch", queue]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and ":1:" in err
        assert "Traceback" not in err

    def test_invalid_json_names_the_line(self, tmp_path, capsys):
        queue = self._write_queue(
            tmp_path,
            ['{"id": "a", "signature": "(1: 1)", "values": [1]}', "{oops"],
        )
        assert main(["batch", queue]) == 2
        err = capsys.readouterr().err
        assert ":2:" in err and "invalid JSON" in err

    def test_missing_fields_rejected(self, tmp_path, capsys):
        queue = self._write_queue(tmp_path, ['{"id": "a", "values": [1]}'])
        assert main(["batch", queue]) == 2
        assert "missing signature" in capsys.readouterr().err

    def test_failed_request_sets_exit_one(self, tmp_path, capsys):
        # A request the resilience chain cannot rescue (rho > 1 in
        # float32 with every rescue lever still on ends at serial and
        # succeeds, so use a NaN input with serial fallback: still ok).
        # The reliable failure: values that are not numbers at all.
        queue = self._write_queue(
            tmp_path,
            ['{"id": "bad", "signature": "(1: 1)", "values": ["zzz"]}'],
        )
        assert main(["batch", queue]) == 2
        assert "bad request" in capsys.readouterr().err


class TestBench:
    def test_writes_schema_complete_records(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(
            [
                "bench",
                "(1: 1)",
                "-n",
                "4096",
                "--repeat",
                "1",
                "--workers",
                "2",
                "-o",
                str(out),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "wrote" in printed and "speedup" in printed
        import json

        payload = json.loads(out.read_text())
        assert payload["workers"] == 2 and payload["repeat"] == 1
        backends = [r["backend"] for r in payload["results"]]
        assert backends[:3] == ["serial", "vectorized", "process"]
        # The native row rides along wherever a C compiler exists; on
        # machines without one the payload records why it was skipped.
        assert backends[3:] == ["native"] or "native_skipped" in payload
        assert payload["fingerprint"]["cpu_count"] >= 1
        for record in payload["results"]:
            assert set(record) == {
                "op", "n", "dtype", "backend", "workers", "wall_s", "speedup",
            }
            assert record["n"] == 4096
            # Effective pool size per row: in-process rows pin 1, the
            # process row records what actually ran (clamped to chunks).
            if record["backend"] == "process":
                assert 1 <= record["workers"] <= 2
            else:
                assert record["workers"] == 1
            assert record["wall_s"] > 0 and record["speedup"] > 0

    def test_bad_signature_is_clean_error(self, tmp_path, capsys):
        rc = main(["bench", "(1:", "-n", "64", "-o", str(tmp_path / "x.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
