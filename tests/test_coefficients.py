"""Filter design: Table 1's coefficients from Smith's formulas."""

import math

import pytest

from repro.core.coefficients import (
    high_pass,
    low_pass,
    pole_for_cutoff,
    pole_for_time_constant,
    single_pole_high_pass,
    single_pole_low_pass,
    table1_signatures,
)
from repro.core.errors import SignatureError


def _close(got, expected, tol=1e-9):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert math.isclose(float(g), e, abs_tol=tol), (got, expected)


class TestTable1LowPass:
    def test_one_stage(self):
        sig = low_pass(1)
        _close(sig.feedforward, [0.2])
        _close(sig.feedback, [0.8])

    def test_two_stage(self):
        sig = low_pass(2)
        _close(sig.feedforward, [0.04])
        _close(sig.feedback, [1.6, -0.64])

    def test_three_stage(self):
        sig = low_pass(3)
        _close(sig.feedforward, [0.008])
        _close(sig.feedback, [2.4, -1.92, 0.512])


class TestTable1HighPass:
    def test_one_stage(self):
        sig = high_pass(1)
        _close(sig.feedforward, [0.9, -0.9])
        _close(sig.feedback, [0.8])

    def test_two_stage(self):
        sig = high_pass(2)
        _close(sig.feedforward, [0.81, -1.62, 0.81])
        _close(sig.feedback, [1.6, -0.64])

    def test_three_stage(self):
        # The paper prints these truncated to two decimals
        # ("(0.73, -2.19, 2.19, -0.73: 2.4, -1.9, 0.5)").
        sig = high_pass(3)
        _close(sig.feedforward, [0.729, -2.187, 2.187, -0.729])
        _close(sig.feedback, [2.4, -1.92, 0.512])


class TestSinglePole:
    def test_low_pass_structure(self):
        sig = single_pole_low_pass(0.5)
        _close(sig.feedforward, [0.5])
        _close(sig.feedback, [0.5])

    def test_high_pass_structure(self):
        sig = single_pole_high_pass(0.5)
        _close(sig.feedforward, [0.75, -0.75])
        _close(sig.feedback, [0.5])

    def test_low_pass_unity_dc_gain(self):
        # At DC (z = 1): H(1) = a0 / (1 - b1) = (1-x)/(1-x) = 1.
        for x in (0.1, 0.5, 0.9, 0.99):
            sig = single_pole_low_pass(x)
            gain = float(sig.feedforward[0]) / (1.0 - float(sig.feedback[0]))
            assert math.isclose(gain, 1.0, rel_tol=1e-12)

    def test_high_pass_zero_dc_gain(self):
        for x in (0.1, 0.5, 0.9):
            sig = single_pole_high_pass(x)
            gain = sum(float(a) for a in sig.feedforward) / (
                1.0 - float(sig.feedback[0])
            )
            assert abs(gain) < 1e-12

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_pole_out_of_range(self, bad):
        with pytest.raises(SignatureError):
            single_pole_low_pass(bad)
        with pytest.raises(SignatureError):
            single_pole_high_pass(bad)


class TestPoleHelpers:
    def test_time_constant(self):
        x = pole_for_time_constant(10.0)
        assert math.isclose(x**10, math.exp(-1.0), rel_tol=1e-12)

    def test_time_constant_rejects_nonpositive(self):
        with pytest.raises(SignatureError):
            pole_for_time_constant(0.0)

    def test_cutoff(self):
        x = pole_for_cutoff(0.25)
        assert math.isclose(x, math.exp(-math.pi / 2), rel_tol=1e-12)

    @pytest.mark.parametrize("bad", [0.0, 0.5, 0.7, -0.1])
    def test_cutoff_rejects_out_of_band(self, bad):
        with pytest.raises(SignatureError):
            pole_for_cutoff(bad)


class TestStageCounts:
    @pytest.mark.parametrize("stages", [1, 2, 3, 4, 5])
    def test_low_pass_order_equals_stages(self, stages):
        assert low_pass(stages).order == stages

    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_high_pass_fir_order_equals_stages(self, stages):
        sig = high_pass(stages)
        assert sig.order == stages
        assert sig.fir_order == stages

    def test_zero_stages_rejected(self):
        with pytest.raises(SignatureError):
            low_pass(0)


def test_table1_has_all_eleven():
    sigs = table1_signatures()
    assert len(sigs) == 11
    orders = [s.order for s in sigs.values()]
    assert orders == [1, 2, 3, 2, 3, 1, 2, 3, 1, 2, 3]


def test_low_and_high_pass_share_feedback():
    # Table 1: the n-stage low- and high-pass filters have identical
    # recursion coefficients (same poles, different zeros).
    for stages in (1, 2, 3):
        lp = low_pass(stages).feedback
        hp = high_pass(stages).feedback
        for a, b in zip(lp, hp):
            assert math.isclose(float(a), float(b), rel_tol=1e-12)
