"""The shipped examples must run clean (they are executable docs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "audio_filtering.py",
    "stream_compaction.py",
    "inspect_compiler.py",
    "gpu_simulation.py",
    "extensions.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should narrate what they did"


def test_reproduce_paper_fast_mode():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "reproduce_paper.py"), "--fast"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    out = result.stdout
    assert "fig1" in out
    assert "Table 2" in out
    assert "Table 3" in out


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(SCRIPTS) <= present
    assert "reproduce_paper.py" in present
