"""Result validation: exact ints, 1e-3 floats (Section 5 methodology)."""

import numpy as np
import pytest

from repro.core.errors import ValidationError
from repro.core.validation import FLOAT_TOLERANCE, assert_valid, compare_results


def test_tolerance_constant_matches_paper():
    assert FLOAT_TOLERANCE == 1e-3


class TestIntegerComparison:
    def test_exact_match(self):
        a = np.array([1, 2, 3], dtype=np.int32)
        report = compare_results(a, a.copy())
        assert report.ok
        assert report.kind == "exact"

    def test_single_mismatch_fails(self):
        a = np.array([1, 2, 3], dtype=np.int32)
        b = np.array([1, 2, 4], dtype=np.int32)
        report = compare_results(a, b)
        assert not report.ok
        assert report.worst_index == 2

    def test_off_by_one_fails(self):
        # Integers get no tolerance at all.
        a = np.arange(100, dtype=np.int64)
        b = a.copy()
        b[50] += 1
        assert not compare_results(a, b).ok


class TestFloatComparison:
    def test_identical(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        assert compare_results(a, a.copy()).ok

    def test_within_tolerance(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = a + 5e-4
        assert compare_results(a, b).ok

    def test_beyond_tolerance(self):
        a = np.array([1.0], dtype=np.float32)
        b = np.array([1.01], dtype=np.float32)
        assert not compare_results(a, b).ok

    def test_relative_for_large_magnitudes(self):
        a = np.array([1e9], dtype=np.float64)
        b = np.array([1e9 * (1 + 5e-4)], dtype=np.float64)
        assert compare_results(a, b).ok  # 5e-4 relative is fine

    def test_absolute_near_zero(self):
        a = np.array([0.0], dtype=np.float32)
        b = np.array([5e-4], dtype=np.float32)
        assert compare_results(a, b).ok
        c = np.array([5e-3], dtype=np.float32)
        assert not compare_results(a, c).ok

    def test_matching_nans_ok(self):
        a = np.array([np.nan, 1.0])
        assert compare_results(a, a.copy()).ok

    def test_mismatched_nan_fails(self):
        a = np.array([np.nan, 1.0])
        b = np.array([0.0, 1.0])
        assert not compare_results(a, b).ok
        assert not compare_results(b, a).ok

    def test_custom_tolerance(self):
        a = np.array([1.0])
        b = np.array([1.05])
        assert compare_results(a, b, tolerance=0.1).ok
        assert not compare_results(a, b, tolerance=0.01).ok


class TestAssertValid:
    def test_raises_with_context(self):
        a = np.array([1], dtype=np.int32)
        b = np.array([2], dtype=np.int32)
        with pytest.raises(ValidationError, match="myctx"):
            assert_valid(a, b, context="myctx")

    def test_returns_report_on_success(self):
        a = np.array([1], dtype=np.int32)
        report = assert_valid(a, a.copy())
        assert report.ok

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError, match="shape"):
            compare_results(np.zeros(3), np.zeros(4))


def test_empty_arrays_ok():
    report = compare_results(np.array([], dtype=np.int32), np.array([], dtype=np.int32))
    assert report.ok
    assert report.checked == 0


def test_report_describe_mentions_index():
    a = np.zeros(10, dtype=np.int32)
    b = a.copy()
    b[7] = 1
    report = compare_results(a, b)
    assert "7" in report.describe()


def test_report_bool_protocol():
    a = np.array([1], dtype=np.int32)
    assert compare_results(a, a.copy())
    assert not compare_results(a, a + 1)
