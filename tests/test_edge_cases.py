"""Edge cases across the stack: exotic signatures, extremes, dtypes."""

import numpy as np
import pytest

from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.core.validation import assert_valid
from repro.gpusim.block import ThreadBlock, block_phase1
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase1 import phase1
from repro.plr.solver import PLRSolver


class TestFractionSignatures:
    """Exact-rational coefficients flow through the whole pipeline."""

    SIG = "(1/5: 4/5)"

    def test_parse_roundtrip(self):
        sig = Signature.parse(self.SIG)
        assert not sig.is_integer
        assert float(sig.feedforward[0]) == pytest.approx(0.2)

    def test_solver(self, rng):
        values = rng.standard_normal(3000).astype(np.float32)
        got = PLRSolver(self.SIG).solve(values)
        expected = serial_full(values, Signature.parse(self.SIG))
        assert_valid(got, expected)

    def test_c_backend(self, rng):
        values = rng.standard_normal(3000).astype(np.float32)
        kernel = PLRCompiler().compile(self.SIG, n=3000, backend="c").kernel
        expected = serial_full(values, Signature.parse(self.SIG))
        assert_valid(kernel(values), expected)

    def test_cuda_emits(self):
        source = PLRCompiler().compile(self.SIG, backend="cuda").source
        assert "0.2f" in source or "0.200" in source


class TestHighOrder:
    """Orders beyond the paper's k < 4 still work (PLR is general)."""

    def test_order_8_tuple(self, rng):
        sig = Signature.tuple_prefix_sum(8)
        values = rng.integers(-9, 9, 4000).astype(np.int32)
        got = PLRSolver(Recurrence(sig)).solve(values)
        np.testing.assert_array_equal(got, serial_full(values, sig))

    def test_order_6_general(self, rng):
        sig = Signature((1,), (1, 0, -1, 0, 1, 1))
        values = rng.integers(-5, 5, 3000).astype(np.int64)
        got = PLRSolver(Recurrence(sig)).solve(values)
        np.testing.assert_array_equal(got, serial_full(values, sig, dtype=np.int64))

    def test_order_10_filter(self, rng):
        # The paper notes filters above ~order 10 tend to be unstable;
        # a mild order-10 cascade still computes correctly.
        from repro.core.coefficients import low_pass

        sig = low_pass(10, x=0.3)
        values = rng.standard_normal(2500).astype(np.float64)
        got = PLRSolver(Recurrence(sig)).solve(values, dtype=np.float64)
        expected = serial_full(values, sig, dtype=np.float64)
        np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


class TestUnstableFloat:
    def test_explosive_filter_matches_serial_until_overflow(self, rng):
        # (1: 1.5) grows without bound; both paths must agree within
        # tolerance while finite, and produce inf at the same scale.
        values = np.abs(rng.standard_normal(2000)).astype(np.float32)
        sig = Signature.parse("(1.0: 1.5)")
        with np.errstate(over="ignore", invalid="ignore"):
            got = PLRSolver(Recurrence(sig)).solve(values)
            expected = serial_full(values, sig)
        finite = np.isfinite(expected)
        assert_valid(got[finite][:200], expected[finite][:200])
        np.testing.assert_array_equal(np.isinf(got[-5:]), np.isinf(expected[-5:]))


class TestDegenerateShapes:
    def test_single_value_all_signatures(self, table1_recurrence):
        values = np.array(
            [3], dtype=np.int32 if table1_recurrence.is_integer else np.float32
        )
        got = PLRSolver(table1_recurrence).solve(values)
        expected = serial_full(values, table1_recurrence.signature)
        assert_valid(got, expected)

    def test_constant_input(self):
        values = np.full(5000, 7, dtype=np.int32)
        got = PLRSolver("(1: 1)").solve(values)
        np.testing.assert_array_equal(got, 7 * np.arange(1, 5001, dtype=np.int32))

    def test_all_zero_input(self):
        values = np.zeros(3000, dtype=np.int32)
        got = PLRSolver("(1: 3, -3, 1)").solve(values)
        assert not got.any()

    def test_order_equals_chunk_size_in_phase1(self, rng):
        # A pathological factor table where k == m.
        sig = Signature((1,), (1, 1, 1, 1))
        table = CorrectionFactorTable.build(sig, 4, np.int64)
        values = rng.integers(-5, 5, 16).astype(np.int64)
        out = phase1(values.copy(), table, 1)
        from repro.core.reference import serial_recurrence

        for c in range(4):
            np.testing.assert_array_equal(
                out[c], serial_recurrence(values[4 * c : 4 * c + 4], [1, 1, 1, 1])
            )


class TestWarp32Block:
    """The lane-level block phase 1 at the real 32-lane warp width."""

    def test_full_width_warps(self, rng):
        machine = MachineSpec.titan_x()
        sig = Signature.parse("(1: 2, -1)")
        m = 128 * 2  # 4 warps of 32 lanes, x = 2
        values = rng.integers(-9, 9, m).astype(np.int64)
        table = CorrectionFactorTable.build(sig, m, np.int64)
        block = ThreadBlock.create(values, 128, machine.warp_size, 48 * 1024)
        block_phase1(block, table)
        expected = phase1(values.copy(), table, 2)
        np.testing.assert_array_equal(block.values(), expected.reshape(-1))
        # With 4 warps there are exactly 2 cross-warp merge levels.
        assert block.stats.shared_writes > 0


class TestDtypeMatrix:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_integer_dtypes(self, dtype, rng):
        values = rng.integers(-100, 100, 5000).astype(dtype)
        got = PLRSolver("(1: 2, -1)").solve(values)
        assert got.dtype == dtype
        np.testing.assert_array_equal(
            got, serial_full(values, Signature.parse("(1: 2, -1)"), dtype=dtype)
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_float_dtypes(self, dtype, rng):
        values = rng.standard_normal(5000).astype(dtype)
        got = PLRSolver("(0.2: 0.8)").solve(values, dtype=dtype)
        assert got.dtype == dtype
        expected = serial_full(values, Signature.parse("(0.2: 0.8)"), dtype=dtype)
        assert_valid(got, expected)

    def test_int64_c_backend(self, rng):
        values = rng.integers(-(2**40), 2**40, 3000).astype(np.int64)
        kernel = PLRCompiler().compile(
            "(1: 1)", n=3000, backend="c", dtype=np.int64
        ).kernel
        np.testing.assert_array_equal(kernel(values), np.cumsum(values))


class TestFactorTableCaching:
    def test_solver_instances_share_tables(self, rng):
        from repro.plr.solver import _cached_table

        _cached_table.cache_clear()
        values = rng.integers(-9, 9, 5000).astype(np.int32)
        PLRSolver("(1: 2, -1)").solve(values)
        first = _cached_table.cache_info()
        PLRSolver("(1: 2, -1)").solve(values)
        second = _cached_table.cache_info()
        assert second.hits > first.hits  # the second solver reused the table


class TestSmallAPIs:
    def test_recurrence_dtype_for(self, rng):
        from repro.core.recurrence import Recurrence
        import numpy as np

        rec = Recurrence.parse("(1: 1)")
        assert rec.dtype_for(rng.integers(0, 5, 4).astype(np.int32)) == np.int32
        flt = Recurrence.parse("(0.2: 0.8)")
        assert flt.dtype_for(rng.integers(0, 5, 4).astype(np.int32)) == np.float32

    def test_solve_artifacts_partial_is_phase1_output(self, rng):
        from repro.plr.solver import PLRSolver

        values = rng.integers(-5, 5, 100).astype(np.int32)
        _, artifacts = PLRSolver("(1: 1)").solve_with_artifacts(values)
        # local carries of chunk 0 = last element of the chunk's cumsum
        m = artifacts.plan.chunk_size
        padded = np.zeros(artifacts.plan.padded_n, dtype=np.int32)
        padded[:100] = values
        assert artifacts.partial[0, -1] == np.cumsum(padded[:m], dtype=np.int32)[-1]

    def test_signature_repr_is_parseable(self):
        sig = Signature.parse("(1: 2, -1)")
        assert eval(repr(sig), {"Signature": Signature}) == sig
