"""Recurrence taxonomy: the families the evaluation groups by."""

import pytest

from repro.core.classify import RecurrenceClass, classify
from repro.core.coefficients import table1_signatures
from repro.core.signature import Signature

EXPECTED_KINDS = {
    "prefix_sum": RecurrenceClass.PREFIX_SUM,
    "tuple2_prefix_sum": RecurrenceClass.TUPLE_PREFIX_SUM,
    "tuple3_prefix_sum": RecurrenceClass.TUPLE_PREFIX_SUM,
    "order2_prefix_sum": RecurrenceClass.HIGHER_ORDER_PREFIX_SUM,
    "order3_prefix_sum": RecurrenceClass.HIGHER_ORDER_PREFIX_SUM,
    "low_pass_1": RecurrenceClass.IIR_FILTER,
    "low_pass_2": RecurrenceClass.IIR_FILTER,
    "low_pass_3": RecurrenceClass.IIR_FILTER,
    "high_pass_1": RecurrenceClass.IIR_FILTER,
    "high_pass_2": RecurrenceClass.IIR_FILTER,
    "high_pass_3": RecurrenceClass.IIR_FILTER,
}


@pytest.mark.parametrize("name,kind", EXPECTED_KINDS.items())
def test_table1_classification(name, kind):
    assert classify(table1_signatures()[name]).kind == kind


def test_prefix_sum_details():
    cls = classify(Signature.prefix_sum())
    assert cls.order == 1
    assert cls.tuple_size == 1
    assert cls.sum_order == 1
    assert cls.is_prefix_sum_family


def test_tuple_size_detected():
    assert classify(Signature.tuple_prefix_sum(3)).tuple_size == 3
    assert classify(Signature.tuple_prefix_sum(5)).tuple_size == 5


def test_sum_order_detected():
    assert classify(Signature.higher_order_prefix_sum(4)).sum_order == 4


def test_general_integer_recurrence():
    cls = classify(Signature.parse("(1: 1, 1)"))  # Fibonacci-style
    assert cls.kind == RecurrenceClass.GENERAL
    assert not cls.is_prefix_sum_family


def test_integer_with_fir_stage_is_general():
    cls = classify(Signature.parse("(1, 1: 1)"))
    assert cls.kind == RecurrenceClass.GENERAL


def test_float_is_filter():
    cls = classify(Signature.parse("(0.5: 0.5)"))
    assert cls.kind == RecurrenceClass.IIR_FILTER
    # A non-unit scalar feed-forward coefficient still needs the map
    # stage (the input must be scaled before the pure recurrence).
    assert cls.has_fir_stage
    pure = classify(Signature.parse("(1.0: 0.5)"))
    assert not pure.has_fir_stage


def test_high_pass_has_fir_stage():
    cls = classify(table1_signatures()["high_pass_1"])
    assert cls.has_fir_stage


def test_low_pass_has_fir_stage_flag():
    # (0.2: 0.8): single non-unit feed-forward coefficient is a map too.
    cls = classify(table1_signatures()["low_pass_1"])
    assert cls.has_fir_stage


def test_near_binomial_is_not_higher_order():
    # (1: 2, 1) differs from the order-2 binomials (2, -1) by a sign.
    cls = classify(Signature.parse("(1: 2, 1)"))
    assert cls.kind == RecurrenceClass.GENERAL


def test_near_tuple_is_not_tuple():
    # (1: 0, 2) has the wrong final coefficient for a tuple sum.
    cls = classify(Signature.parse("(1: 0, 2)"))
    assert cls.kind == RecurrenceClass.GENERAL


def test_order_matches_signature():
    for name, signature in table1_signatures().items():
        assert classify(signature).order == signature.order, name
