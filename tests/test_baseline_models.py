"""Structural properties of the traffic/memory models.

These tests pin the *mechanisms* each model encodes — the terms the
paper's analysis names — independent of the calibrated constants, so a
recalibration cannot silently change what an algorithm is modeled to
do.
"""

import numpy as np
import pytest

from repro.baselines import Workload, make_code
from repro.baselines.base import WORD_BYTES
from repro.baselines.plr_code import PLRCode
from repro.core.recurrence import Recurrence
from repro.core.signature import Signature
from repro.gpusim.spec import MachineSpec
from repro.plr.optimizer import OptimizationConfig

TITAN = MachineSpec.titan_x()
N = 2**24


def traffic(code_name, text, n=N):
    code = make_code(code_name)
    return code.traffic(Workload(Recurrence.parse(text), n), TITAN)


class TestDataMovement:
    def test_single_pass_codes_move_2n(self):
        """PLR, CUB, SAM: 2n data movement (read once, write once)."""
        for code in ("PLR", "CUB", "SAM"):
            t = traffic(code, "(1: 1)")
            assert t.hbm_read_bytes == pytest.approx(N * WORD_BYTES, rel=0.01), code
            assert t.hbm_write_bytes == pytest.approx(N * WORD_BYTES, rel=0.01), code

    def test_cub_passes_scale_with_order(self):
        """'CUB repeats the entire code': r x the movement."""
        t1 = traffic("CUB", "(1: 1)")
        t3 = traffic("CUB", "(1: 3, -3, 1)")
        assert t3.hbm_read_bytes == pytest.approx(3 * t1.hbm_read_bytes)

    def test_sam_single_pass_regardless_of_order(self):
        """'SAM only repeats the computation but not the reading'."""
        t1 = traffic("SAM", "(1: 1)")
        t3 = traffic("SAM", "(1: 3, -3, 1)")
        assert t3.hbm_read_bytes == t1.hbm_read_bytes
        assert t3.aux_ops > t1.aux_ops

    def test_scan_moves_k2_plus_k(self):
        """Scan's encoded elements are k^2 + k words."""
        t1 = traffic("Scan", "(1: 1)")
        t2 = traffic("Scan", "(1: 0, 1)")
        t3 = traffic("Scan", "(1: 0, 0, 1)")
        assert t2.hbm_read_bytes == pytest.approx(3 * t1.hbm_read_bytes)
        assert t3.hbm_read_bytes == pytest.approx(6 * t1.hbm_read_bytes)

    def test_alg3_reads_input_twice_per_direction(self):
        t = traffic("Alg3", "(0.2: 0.8)")
        # two directions x (pass 1 + recompute pass) = 4 reads.
        assert t.hbm_read_bytes == pytest.approx(4 * N * WORD_BYTES, rel=0.01)

    def test_rec_reread_branches_on_l2(self):
        small = traffic("Rec", "(0.2: 0.8)", n=2**18)  # 1 MB: fits L2
        large = traffic("Rec", "(0.2: 0.8)", n=2**22)  # 16 MB: misses
        assert small.hbm_read_bytes == pytest.approx(2**18 * WORD_BYTES, rel=0.05)
        assert large.hbm_read_bytes == pytest.approx(2 * 2**22 * WORD_BYTES, rel=0.05)

    def test_memcpy_moves_exactly_2n(self):
        t = traffic("memcpy", "(1: 1)")
        assert t.hbm_read_bytes + t.hbm_write_bytes == 2 * N * WORD_BYTES


class TestPLRModelStructure:
    def test_counts_scale_with_order(self):
        code = PLRCode()
        c1 = code.correction_counts(Workload(Recurrence.parse("(1: 1)"), N), TITAN)
        c2 = code.correction_counts(
            Workload(Recurrence.parse("(1: 2, -1)"), N), TITAN
        )
        assert c2.total > 1.8 * c1.total  # two carries per correction site

    def test_prefix_sum_needs_no_loads(self):
        counts = PLRCode().correction_counts(
            Workload(Recurrence.parse("(1: 1)"), N), TITAN
        )
        assert counts.constant == counts.total
        assert counts.shared_loads == 0
        assert counts.l2_loads == 0

    def test_tuple_is_predicated_without_loads(self):
        counts = PLRCode().correction_counts(
            Workload(Recurrence.parse("(1: 0, 1)"), N), TITAN
        )
        assert counts.predicated == counts.total
        assert counts.l2_loads == 0

    def test_filter_truncation_shrinks_counts(self):
        on = PLRCode().correction_counts(
            Workload(Recurrence.parse("(0.2: 0.8)"), N), TITAN
        )
        off = PLRCode(OptimizationConfig.disabled()).correction_counts(
            Workload(Recurrence.parse("(0.2: 0.8)"), N), TITAN
        )
        assert on.total < 0.7 * off.total

    def test_denormal_tail_only_when_flushing_disabled(self):
        on = PLRCode().correction_counts(
            Workload(Recurrence.parse("(0.2: 0.8)"), N), TITAN
        )
        off = PLRCode(OptimizationConfig.disabled()).correction_counts(
            Workload(Recurrence.parse("(0.2: 0.8)"), N), TITAN
        )
        assert on.denormal == 0
        assert off.denormal > 0

    def test_integer_recurrences_never_denormal(self):
        off = PLRCode(OptimizationConfig.disabled()).correction_counts(
            Workload(Recurrence.parse("(1: 2, -1)"), N), TITAN
        )
        assert off.denormal == 0

    def test_occupancy_penalty_for_64_register_plans(self):
        simple = traffic("PLR", "(1: 0, 1)")  # 32 regs
        complex_ = traffic("PLR", "(1: 2, -1)")  # 64 regs
        # Same correction count per element (k = 2 both), but the
        # complex-integer plan's ops are inflated by halved occupancy.
        assert complex_.aux_ops > 1.5 * simple.aux_ops

    def test_small_grid_bandwidth_floor(self):
        t = traffic("PLR", "(1: 1)", n=2**14)
        assert t.min_time_s > 0

    def test_high_pass_overfetch(self):
        lp = traffic("PLR", "(1.0: 0.8)")
        hp = traffic("PLR", "(0.9, -0.9: 0.8)")
        assert hp.hbm_read_bytes > lp.hbm_read_bytes


class TestMemoryModelStructure:
    def test_plr_memory_scales_with_stored_factors(self):
        code = make_code("PLR")
        prefix = code.memory_usage_bytes(
            Workload(Recurrence.parse("(1: 1)"), N), TITAN
        )
        order3 = code.memory_usage_bytes(
            Workload(Recurrence.parse("(1: 3, -3, 1)"), N), TITAN
        )
        assert order3 > prefix  # three full factor arrays vs none

    def test_scan_memory_dominates_everything(self):
        scan = make_code("Scan").memory_usage_bytes(
            Workload(Recurrence.parse("(1: 0, 0, 1)"), N), TITAN
        )
        plr = make_code("PLR").memory_usage_bytes(
            Workload(Recurrence.parse("(1: 0, 0, 1)"), N), TITAN
        )
        assert scan > 5 * plr

    def test_l2_misses_never_below_cold(self):
        for code_name in ("PLR", "CUB", "SAM", "Scan", "Alg3", "Rec"):
            code = make_code(code_name)
            rec = Recurrence.parse(
                "(0.2: 0.8)" if code_name in ("Alg3", "Rec") else "(1: 1)"
            )
            misses = code.l2_read_miss_bytes(Workload(rec, N), TITAN)
            cold = N * WORD_BYTES if code_name != "Scan" else 2 * N * WORD_BYTES
            assert misses >= cold, code_name
