"""The serving layer: protocol, breaker, warm state, and a live server.

Every test that runs a real asyncio server is marked ``serve`` and
therefore rides the hard SIGALRM timeout installed in conftest — the
serving layer's worst failure mode is a hang, and a hung test must die
loudly, not stall the suite.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.batch.planner import BatchPlanner
from repro.core.errors import ProtocolError
from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    CircuitBreaker,
    PLRServer,
    ServeClient,
    ServeConfig,
    WarmTables,
    ControlFrame,
    SolveFrame,
    encode_reply,
    error_reply,
    parse_frame,
)
from repro.serve.chaos import FaultSchedule, FaultyEngine, run_server_chaos


def run(coro, timeout: float = 60.0):
    """Drive one async test body with an outer safety timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_server(**overrides) -> tuple[PLRServer, FaultSchedule]:
    """A server on an ephemeral port wired to a controllable engine."""
    overrides.setdefault("min_bucket", 16)
    overrides.setdefault("flush_ms", 2.0)
    schedule = FaultSchedule()
    metrics = MetricsRegistry()
    config = ServeConfig(**overrides)
    engine = FaultyEngine(
        planner=BatchPlanner(
            min_bucket=config.min_bucket, max_batch=config.max_batch
        ),
        metrics=metrics,
        schedule=schedule,
    )
    return PLRServer(config, engine=engine, metrics=metrics), schedule


class TestProtocol:
    def test_solve_frame_round_trip(self):
        frame = parse_frame(
            b'{"id": 7, "signature": "(1: 2, -1)", "values": [1, 2], '
            b'"dtype": "int32", "deadline_ms": 50}\n'
        )
        assert isinstance(frame, SolveFrame)
        assert frame.id == 7
        assert frame.signature == "(1: 2, -1)"
        assert frame.values == [1, 2]
        assert frame.dtype == "int32"
        assert frame.deadline_ms == 50

    def test_optional_fields_default(self):
        frame = parse_frame('{"signature": "(1: 1)", "values": []}')
        assert frame.id is None
        assert frame.dtype is None
        assert frame.deadline_ms is None

    def test_control_frames(self):
        for op in ("ping", "metrics", "drain"):
            frame = parse_frame(json.dumps({"op": op, "id": "x"}))
            assert isinstance(frame, ControlFrame)
            assert frame.op == op and frame.id == "x"

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"[1, 2]",
            b"42",
            b'"string"',
            b'{"signature": "(1: 1)"}',
            b'{"values": [1]}',
            b'{"signature": 3, "values": [1]}',
            b'{"signature": "(1: 1)", "values": 5}',
            b'{"signature": "(1: 1)", "values": [1], "dtype": 9}',
            b'{"signature": "(1: 1)", "values": [1], "deadline_ms": "soon"}',
            b'{"signature": "(1: 1)", "values": [1], "deadline_ms": true}',
            b'{"signature": "(1: 1)", "values": [1], "deadline_ms": -1}',
            b'{"signature": "(1: 1)", "values": [1], "deadline_ms": NaN}',
            b'{"op": "reboot"}',
            b"\xff\xfe\x00",
        ],
    )
    def test_malformed_frames_raise_typed(self, line):
        with pytest.raises(ProtocolError):
            parse_frame(line)

    def test_error_reply_and_encoding(self):
        reply = error_reply(3, ProtocolError("bad frame"))
        assert reply == {
            "id": 3,
            "ok": False,
            "error": "ProtocolError",
            "detail": "bad frame",
        }
        wire = encode_reply(reply)
        assert wire.endswith(b"\n")
        assert json.loads(wire) == reply


class TestCircuitBreaker:
    def _clocked(self, threshold=3, cooldown=10.0):
        state = {"now": 0.0}
        breaker = CircuitBreaker(threshold, cooldown, clock=lambda: state["now"])
        return breaker, state

    def test_trips_at_threshold_only(self):
        breaker, _ = self._clocked(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.open and breaker.trips == 0
        breaker.record_failure()
        assert breaker.open and breaker.trips == 1

    def test_repeat_failures_while_open_do_not_retrip(self):
        breaker, _ = self._clocked(threshold=2)
        for _ in range(6):
            breaker.record_failure()
        assert breaker.trips == 1

    def test_half_open_after_cooldown_then_success_resets(self):
        breaker, state = self._clocked(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert breaker.open
        state["now"] = 5.0
        assert not breaker.open  # half-open: a probe may pass
        breaker.record_success()
        assert breaker.consecutive_failures == 0 and breaker.opened_at is None

    def test_failed_probe_reopens_and_counts_a_new_trip(self):
        breaker, state = self._clocked(threshold=1, cooldown=5.0)
        breaker.record_failure()
        state["now"] = 6.0
        assert not breaker.open
        breaker.record_success()
        breaker.record_failure()
        assert breaker.open and breaker.trips == 2


class TestWarmTables:
    def test_build_once_then_hits(self):
        metrics = MetricsRegistry()
        warm = WarmTables(4, metrics)
        sig = Signature.parse("(1: 2, -1)")
        warm.touch(sig, np.dtype(np.int32), 64)
        warm.touch(sig, np.dtype(np.int32), 64)
        counters = metrics.snapshot()["counters"]
        assert counters["serve.warm.builds"] == 1
        assert counters["serve.warm.hits"] == 1

    def test_lru_bound_evicts_oldest(self):
        metrics = MetricsRegistry()
        warm = WarmTables(2, metrics)
        sig = Signature.parse("(1: 1)")
        for bucket in (64, 128, 256):
            warm.touch(sig, np.dtype(np.int64), bucket)
        assert len(warm._entries) == 2
        # 64 was evicted: touching it again is a rebuild, not a hit.
        warm.touch(sig, np.dtype(np.int64), 64)
        counters = metrics.snapshot()["counters"]
        assert counters["serve.warm.builds"] == 4
        assert counters.get("serve.warm.hits", 0) == 0

    def test_zero_capacity_is_inert(self):
        warm = WarmTables(0, MetricsRegistry())
        warm.touch(Signature.parse("(1: 1)"), np.dtype(np.int32), 64)
        assert len(warm._entries) == 0


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"max_batch": 0},
            {"flush_ms": -1.0},
            {"breaker_threshold": 0},
            {"read_timeout_s": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


@pytest.mark.serve
class TestServerEndToEnd:
    def test_solve_round_trip_is_correct(self):
        async def body():
            server, _ = make_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                values = list(range(1, 40))
                reply = await client.solve("(1: 2, -1)", values, request_id=9)
                assert reply["ok"] and reply["id"] == 9
                assert reply["engine"] == "batch"
                expected = serial_full(
                    np.asarray(values), Signature.parse("(1: 2, -1)")
                )
                assert reply["output"] == expected.tolist()
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_pipelined_requests_all_replied_with_ids(self):
        async def body():
            server, _ = make_server(flush_ms=5.0)
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                count = 20
                for i in range(count):
                    await client.send(
                        {
                            "id": i,
                            "signature": "(1: 1)",
                            "values": list(range(1, 8 + i)),
                        }
                    )
                seen = set()
                for _ in range(count):
                    reply = await client.recv(timeout=30)
                    assert reply is not None and reply["ok"]
                    seen.add(reply["id"])
                assert seen == set(range(count))
                # Pipelining actually batched: fewer flushes than requests.
                counters = server.metrics.snapshot()["counters"]
                assert counters["serve.flushes"] < count
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_malformed_frame_typed_reply_connection_survives(self):
        async def body():
            server, _ = make_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                await client.send_raw(b"garbage\n")
                reply = await client.recv(timeout=10)
                assert reply["ok"] is False
                assert reply["error"] == "ProtocolError"
                # Same connection still serves.
                reply = await client.solve("(1: 1)", [1, 2, 3])
                assert reply["ok"] and reply["output"] == [1, 3, 6]
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_unsolvable_request_typed_reply(self):
        async def body():
            server, _ = make_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                reply = await client.solve("(1: ", [1, 2])
                assert reply["ok"] is False
                assert reply["error"] == "SignatureError"
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_oversized_line_typed_reply_then_close(self):
        async def body():
            server, _ = make_server(max_line_bytes=2048)
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                await client.send_raw(b"y" * 4096 + b"\n")
                reply = await client.recv(timeout=10)
                assert reply is not None and reply["error"] == "ProtocolError"
                assert await client.recv(timeout=10) is None  # closed
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_expired_deadline_is_shed_typed(self):
        async def body():
            server, _ = make_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                reply = await client.solve("(1: 1)", [1, 2, 3], deadline_ms=0)
                assert reply["ok"] is False
                assert reply["error"] == "DeadlineExceeded"
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_default_deadline_applies_to_bare_requests(self):
        async def body():
            server, schedule = make_server(default_deadline_ms=1.0)
            await server.start()
            schedule.delay_s = 0.1  # every flush outlives a 1ms deadline
            try:
                client = await ServeClient.connect(server.address)
                reply = await client.solve("(1: 1)", [1, 2, 3], timeout=30)
                assert reply["ok"] is False
                assert reply["error"] == "DeadlineExceeded"
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_overload_sheds_with_typed_error(self):
        async def body():
            server, schedule = make_server(
                max_queue=2, max_batch=1, flush_ms=1.0
            )
            await server.start()
            schedule.delay_s = 0.1
            try:
                client = await ServeClient.connect(server.address)
                count = 12
                for i in range(count):
                    await client.send(
                        {"id": i, "signature": "(1: 1)", "values": [1, 2, 3]}
                    )
                sheds = 0
                for _ in range(count):
                    reply = await client.recv(timeout=30)
                    assert reply is not None
                    if not reply["ok"]:
                        assert reply["error"] == "OverloadError"
                        sheds += 1
                assert sheds > 0
                counters = server.metrics.snapshot()["counters"]
                assert counters["serve.shed_overload"] == sheds
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_breaker_trips_then_recovers_after_cooldown(self):
        async def body():
            server, schedule = make_server(
                breaker_threshold=2, breaker_cooldown_s=0.2, flush_ms=1.0
            )
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                schedule.die_remaining = 2
                for i in range(2):
                    reply = await client.solve("(1: 1)", [1], request_id=i)
                    assert reply["error"] == "WorkerError"
                # Open: fast-rejected without queueing.
                reply = await client.solve("(1: 1)", [1], request_id="r")
                assert reply["error"] == "OverloadError"
                assert "breaker" in reply["detail"]
                # After the cooldown the healthy engine closes it again.
                await asyncio.sleep(0.25)
                reply = await client.solve("(1: 1)", [1, 2], request_id="p")
                assert reply["ok"] and reply["output"] == [1, 3]
                counters = server.metrics.snapshot()["counters"]
                assert counters["serve.breaker_trips"] == 1
                assert counters["serve.breaker_rejections"] == 1
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_drain_flushes_inflight_and_snapshots(self, tmp_path):
        async def body():
            metrics_path = tmp_path / "final.json"
            server, schedule = make_server(
                flush_ms=10.0, metrics_path=str(metrics_path)
            )
            await server.start()
            schedule.delay_s = 0.02
            try:
                client = await ServeClient.connect(server.address)
                for i in range(5):
                    await client.send(
                        {
                            "id": i,
                            "signature": "(1: 1)",
                            "values": list(range(1, 6)),
                        }
                    )
                await client.send({"op": "drain", "id": "d"})
                replies = {}
                for _ in range(6):
                    reply = await client.recv(timeout=30)
                    assert reply is not None
                    replies[reply["id"]] = reply
                # Every in-flight request completed correctly.
                for i in range(5):
                    assert replies[i]["ok"]
                    assert replies[i]["output"] == [1, 3, 6, 10, 15]
                assert replies["d"]["ok"] and replies["d"]["draining"]
                await asyncio.wait_for(server._drained.wait(), timeout=30)
                assert server.final_snapshot is not None
                on_disk = json.loads(metrics_path.read_text())
                assert on_disk["counters"]["serve.admitted"] == 5
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_solves_rejected_while_draining(self):
        async def body():
            server, schedule = make_server(flush_ms=5.0)
            await server.start()
            schedule.delay_s = 0.1
            try:
                client = await ServeClient.connect(server.address)
                await client.send(
                    {"id": 0, "signature": "(1: 1)", "values": [1, 2]}
                )
                await client.send({"op": "drain", "id": "d"})
                # Admission is closed the moment the drain ack is sent.
                await client.send(
                    {"id": 1, "signature": "(1: 1)", "values": [1, 2]}
                )
                replies = {}
                for _ in range(3):
                    reply = await client.recv(timeout=30)
                    if reply is None:
                        break
                    replies[reply["id"]] = reply
                assert replies[0]["ok"]
                assert replies[1]["ok"] is False
                assert replies[1]["error"] == "OverloadError"
                assert "drain" in replies[1]["detail"]
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_metrics_op_reports_serving_state(self):
        async def body():
            server, _ = make_server()
            await server.start()
            try:
                client = await ServeClient.connect(server.address)
                await client.solve("(1: 1)", [1, 2, 3])
                reply = await client.metrics()
                assert reply["ok"]
                serving = reply["serving"]
                assert serving["draining"] is False
                assert serving["breaker"]["open"] is False
                assert serving["latency_ms"]["count"] == 1
                assert serving["batch_occupancy"]["count"] == 1
                assert reply["metrics"]["counters"]["serve.admitted"] == 1
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_unix_socket_round_trip(self, tmp_path):
        async def body():
            path = str(tmp_path / "plr.sock")
            server, _ = make_server(unix_path=path)
            await server.start()
            try:
                assert server.address == path
                client = await ServeClient.connect(path)
                reply = await client.solve("(1: 1)", [2, 2, 2])
                assert reply["ok"] and reply["output"] == [2, 4, 6]
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_slow_loris_disconnected_by_idle_timeout(self):
        async def body():
            server, _ = make_server(read_timeout_s=0.2)
            await server.start()
            try:
                loris = await ServeClient.connect(server.address)
                await loris.send_raw(b'{"signature"')  # never finishes
                line = await asyncio.wait_for(loris.reader.readline(), 5.0)
                assert line == b""  # server hung up
                await loris.close()
                # And a healthy client is unaffected.
                client = await ServeClient.connect(server.address)
                reply = await client.solve("(1: 1)", [1])
                assert reply["ok"]
                await client.close()
            finally:
                await server.aclose()

        run(body())

    def test_disconnect_before_reply_does_not_kill_server(self):
        async def body():
            server, schedule = make_server(flush_ms=5.0)
            await server.start()
            schedule.delay_s = 0.05
            try:
                ghost = await ServeClient.connect(server.address)
                await ghost.send(
                    {"id": 0, "signature": "(1: 1)", "values": [1, 2, 3]}
                )
                ghost.writer.close()  # vanish without reading
                await asyncio.sleep(0.2)
                schedule.delay_s = 0.0
                client = await ServeClient.connect(server.address)
                reply = await client.solve("(1: 1)", [5])
                assert reply["ok"] and reply["output"] == [5]
                await client.close()
            finally:
                await server.aclose()

        run(body())


@pytest.mark.serve
class TestServerChaos:
    @pytest.mark.chaos
    def test_server_chaos_matrix_holds_invariant(self):
        """The acceptance sweep for the serving layer: slow-loris,
        malformed frames, deadline storms, overload floods, worker
        death, vanishing clients, and a graceful drain — every
        interaction a typed error or a bit-correct result."""
        report = run_server_chaos(seed=20180324, requests=16)
        assert report.ok, report.describe()
        counts = report.counts()
        # Each hostile phase actually exercised its fault.
        assert counts.get("pipelined:correct", 0) == 16
        assert counts.get("malformed:typed_error", 0) >= 10
        assert counts.get("slowloris:expected", 0) == 1
        assert counts.get("deadline_storm:expected", 0) == 1
        assert counts.get("overload:expected", 0) == 1
        assert counts.get("worker_death:typed_error", 0) >= 3
        assert counts.get("drain:expected", 0) == 2
        assert report.final_metrics is not None


@pytest.mark.serve
class TestServeCLI:
    def test_self_test_smoke(self, capsys):
        """``plr serve --self-test`` is the default-suite smoke: a live
        ephemeral server, one pass over the reply contract."""
        from repro.cli import main

        assert main(["serve", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "7/7 checks passed" in out

    def test_chaos_cli_server_mode_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "chaos.json"
        assert main(["chaos", "--mode", "server", "--cases", "64",
                     "-o", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] and payload["mode"] == "server"
        assert payload["violations"] == []

    def test_chaos_cli_unwritable_output_fails_fast(self, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "--mode", "engine", "-o", "/proc/version/x.json"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1
