"""The CUDA occupancy calculator vs the planner's simple rule."""

import pytest

from repro.core.errors import PlanError
from repro.core.signature import Signature
from repro.gpusim.occupancy import MAX_BLOCKS_PER_SM, occupancy
from repro.gpusim.spec import MachineSpec
from repro.plr.planner import plan_execution

TITAN = MachineSpec.titan_x()


class TestPaperConfigurations:
    def test_32_register_kernel(self):
        # The paper's float/simple-int configuration: 2 blocks per SM.
        result = occupancy(TITAN, block_size=1024, registers_per_thread=32)
        assert result.blocks_per_sm == 2
        assert result.resident_blocks == 48
        assert result.limiting_resource in ("threads", "registers")
        assert result.occupancy_fraction == 1.0

    def test_64_register_kernel(self):
        result = occupancy(TITAN, block_size=1024, registers_per_thread=64)
        assert result.blocks_per_sm == 1
        assert result.resident_blocks == 24
        assert result.limiting_resource == "registers"
        assert result.occupancy_fraction == 0.5

    def test_planner_matches_calculator(self):
        # The planner's shortcut (registers only) agrees with the full
        # four-resource calculation for the paper's configurations.
        for text in ("(1: 1)", "(0.2: 0.8)", "(1: 2, -1)", "(1: 3, -3, 1)"):
            plan = plan_execution(Signature.parse(text), 1 << 24, TITAN)
            full = occupancy(
                TITAN,
                block_size=plan.block_size,
                registers_per_thread=plan.registers_per_thread,
            )
            assert plan.resident_blocks == full.resident_blocks, text


class TestLimits:
    def test_shared_memory_binds(self):
        # 40 kB per block: only two fit in the 96 kB SM.
        result = occupancy(
            TITAN, block_size=128, registers_per_thread=16,
            shared_memory_per_block=40 * 1024,
        )
        assert result.blocks_per_sm == 2
        assert result.limiting_resource == "shared_memory"

    def test_block_cap_binds(self):
        result = occupancy(TITAN, block_size=32, registers_per_thread=1)
        assert result.blocks_per_sm == MAX_BLOCKS_PER_SM
        assert result.limiting_resource == "block_cap"

    def test_threads_bind(self):
        result = occupancy(TITAN, block_size=1024, registers_per_thread=8)
        assert result.thread_limit == 2
        assert result.blocks_per_sm == 2

    def test_zero_shared_is_unconstrained(self):
        result = occupancy(TITAN, block_size=256, registers_per_thread=32)
        assert result.shared_memory_limit > MAX_BLOCKS_PER_SM


class TestValidation:
    def test_block_too_large(self):
        with pytest.raises(PlanError):
            occupancy(TITAN, block_size=2048, registers_per_thread=32)

    def test_shared_over_block_budget(self):
        with pytest.raises(PlanError):
            occupancy(
                TITAN, block_size=128, registers_per_thread=32,
                shared_memory_per_block=49 * 1024,
            )

    def test_does_not_fit(self):
        with pytest.raises(PlanError, match="does not fit"):
            occupancy(TITAN, block_size=1024, registers_per_thread=128)

    def test_bad_registers(self):
        with pytest.raises(PlanError):
            occupancy(TITAN, block_size=128, registers_per_thread=0)
