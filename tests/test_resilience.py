"""Resilient execution: fault plans, health checks, the fallback chain,
and the chaos invariant (correct output or typed error, never silent
corruption)."""

import numpy as np
import pytest

from repro.core.errors import (
    DeadlockError,
    NumericalError,
    ReproError,
    SimulationError,
)
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.core.validation import compare_results
from repro.gpusim.executor import ProtocolFault, SimulatedPLR, coerce_fault_plan
from repro.gpusim.faults import (
    CORRUPTING_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    flip_bit,
)
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.resilience.chaos import random_fault_plan, run_chaos
from repro.resilience.health import (
    array_health,
    check_finite,
    predict_table_overflow,
    spectral_radius,
)
from repro.resilience.solver import FallbackPolicy, ResilientSolver

from repro.core.coefficients import table1_signatures
from tests.conftest import make_values


@pytest.fixture(scope="module")
def machine() -> MachineSpec:
    return MachineSpec.small_test_gpu()


class TestFaultPlan:
    def test_none_is_inactive(self):
        assert not FaultPlan.none().active
        assert FaultPlan.none().describe() == "no faults"

    def test_single_and_kinds(self):
        plan = FaultPlan.single("stale_carry", chunks=(1, 2))
        assert plan.active
        assert plan.kinds() == frozenset({FaultKind.STALE_CARRY})
        assert plan.specs[0].applies_to(1)
        assert not plan.specs[0].applies_to(0)

    def test_coerce_paths(self):
        assert not coerce_fault_plan(None).active
        assert not coerce_fault_plan("none").active
        assert coerce_fault_plan(FaultKind.BIT_FLIP_CARRY).active
        spec = FaultSpec(kind=FaultKind.STALE_CARRY)
        assert coerce_fault_plan(spec).specs == (spec,)
        plan = FaultPlan.single("delay_flag")
        assert coerce_fault_plan(plan) is plan

    def test_unknown_kind_is_typed(self):
        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultPlan.single("meteor_strike")

    def test_invalid_spec_parameters_rejected(self):
        with pytest.raises(SimulationError):
            FaultSpec(kind=FaultKind.STALE_CARRY, probability=1.5)
        with pytest.raises(SimulationError):
            FaultSpec(kind=FaultKind.DELAY_FLAG, window=0)
        with pytest.raises(SimulationError):
            FaultSpec(kind=FaultKind.STALE_CARRY, max_triggers=-1)

    def test_legacy_presets_lower_to_plans(self):
        assert not ProtocolFault.NONE.to_plan().active
        assert ProtocolFault.FLAG_BEFORE_DATA.to_plan().kinds() == frozenset(
            {FaultKind.DELAY_FLAG}
        )
        assert ProtocolFault.SKIP_LOCAL_FLAG.to_plan().kinds() == frozenset(
            {FaultKind.DROP_LOCAL_FLAG}
        )
        assert ProtocolFault.NEVER_PUBLISH.to_plan().kinds() == frozenset(
            {FaultKind.DROP_LOCAL_FLAG, FaultKind.DROP_GLOBAL_FLAG}
        )


class TestFaultEngine:
    def test_budget_respected(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind=FaultKind.STALE_CARRY, max_triggers=2),)
        )
        engine = plan.engine()
        fired = [engine.fire(FaultKind.STALE_CARRY, c) for c in range(5)]
        assert sum(f is not None for f in fired) == 2
        assert len(engine.events) == 2

    def test_probability_is_seeded(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind=FaultKind.STALE_CARRY, probability=0.5),),
            seed=42,
        )
        engine1, engine2 = plan.engine(), plan.engine()
        first = [engine1.fire(FaultKind.STALE_CARRY, c) is not None
                 for c in range(20)]
        second = [engine2.fire(FaultKind.STALE_CARRY, c) is not None
                  for c in range(20)]
        assert first == second  # same plan seed, same draws
        assert any(first) and not all(first)

    def test_abort_restart_capped_per_chunk(self):
        from repro.gpusim.faults import MAX_RESTARTS_PER_CHUNK

        plan = FaultPlan.single(FaultKind.ABORT_RESTART)
        engine = plan.engine()
        fired = [
            engine.fire(FaultKind.ABORT_RESTART, 3) is not None
            for _ in range(MAX_RESTARTS_PER_CHUNK + 3)
        ]
        assert sum(fired) == MAX_RESTARTS_PER_CHUNK

    def test_flip_bit_roundtrip(self):
        values = np.array([12345], dtype=np.int32)
        flipped = flip_bit(values, 7)
        assert flipped[0] != values[0]
        np.testing.assert_array_equal(flip_bit(flipped, 7), values)

    def test_flip_bit_float(self):
        values = np.array([1.5], dtype=np.float32)
        flipped = flip_bit(values, 22)
        assert flipped.dtype == np.float32
        assert flipped[0] != values[0]


class TestGeneralizedSimFaults:
    """The new fault kinds, driven straight through the simulator."""

    def test_abort_restart_recovers_exactly(self, machine, rng):
        values = rng.integers(-9, 9, 600).astype(np.int32)
        sim = SimulatedPLR(
            Recurrence.parse("(1: 1)"), machine, seed=4,
            fault=FaultPlan.single(FaultKind.ABORT_RESTART, probability=0.3),
        )
        result = sim.run(values)
        assert result.restarts > 0
        assert any(e.kind == FaultKind.ABORT_RESTART for e in result.fault_events)
        np.testing.assert_array_equal(
            result.output, np.cumsum(values, dtype=np.int32)
        )

    @pytest.mark.parametrize("kind", sorted(CORRUPTING_KINDS, key=lambda k: k.value))
    def test_corrupting_kinds_corrupt_silently(self, kind, machine, rng):
        """These faults must complete without any protocol error and
        produce a wrong answer under at least one schedule — that is
        what makes redundant verification necessary."""
        values = rng.integers(1, 9, 600).astype(np.int32)
        expected = np.cumsum(values, dtype=np.int32)
        corrupted = 0
        for seed in range(8):
            sim = SimulatedPLR(
                Recurrence.parse("(1: 1)"), machine, seed=seed,
                fault=FaultPlan.single(kind, bit=30, window=6),
            )
            out = sim.run(values).output  # must not raise
            if not np.array_equal(out, expected):
                corrupted += 1
        assert corrupted > 0

    def test_drop_local_flag_keeps_correctness(self, machine, rng):
        values = rng.integers(-9, 9, 480).astype(np.int32)
        sim = SimulatedPLR(
            Recurrence.parse("(1: 2, -1)"), machine, seed=1,
            fault=FaultPlan.single(FaultKind.DROP_LOCAL_FLAG),
            deadlock_rounds=200,
        )
        out = sim.run(values).output
        np.testing.assert_array_equal(
            out, serial_full(values, Signature.parse("(1: 2, -1)"))
        )

    def test_drop_global_flag_deadlocks_with_forensics(self, machine, rng):
        values = rng.integers(0, 5, 400).astype(np.int32)
        sim = SimulatedPLR(
            Recurrence.parse("(1: 1)"), machine, seed=0,
            fault=FaultPlan.single(FaultKind.DROP_GLOBAL_FLAG, chunks=(0,)),
            deadlock_rounds=50,
        )
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(values)
        assert any(0 in w.blocked_on for w in excinfo.value.forensics)

    def test_per_chunk_targeting(self, machine, rng):
        """A bit flip on one chunk's carry leaves outputs before that
        chunk untouched."""
        values = rng.integers(1, 9, 320).astype(np.int32)
        m = machine.max_threads_per_block  # 16
        sim = SimulatedPLR(
            Recurrence.parse("(1: 1)"), machine, seed=2,
            fault=FaultPlan.single(FaultKind.BIT_FLIP_CARRY, chunks=(10,), bit=20),
        )
        out = sim.run(values).output
        expected = np.cumsum(values, dtype=np.int32)
        np.testing.assert_array_equal(out[: 11 * m], expected[: 11 * m])
        assert not np.array_equal(out[11 * m :], expected[11 * m :])


class TestHealth:
    def test_array_health_clean_and_contaminated(self):
        clean = array_health(np.ones(4, dtype=np.float32))
        assert clean.finite and clean.max_abs == 1.0
        bad = array_health(np.array([1.0, np.nan, np.inf, -np.inf]))
        assert not bad.finite
        assert bad.nan_count == 1 and bad.inf_count == 2
        assert "contaminated" in bad.describe()

    def test_integer_arrays_always_healthy(self):
        report = array_health(np.array([2**31 - 1, -(2**31)], dtype=np.int32))
        assert report.finite

    def test_check_finite_raises_typed(self):
        with pytest.raises(NumericalError, match="phase 2 output"):
            check_finite(np.array([np.inf], dtype=np.float32), "phase 2 output")

    def test_spectral_radius_families(self):
        assert spectral_radius(Signature.parse("(1: 1)")) == pytest.approx(1.0)
        assert spectral_radius(Signature.parse("(1: 1.05)")) == pytest.approx(1.05)
        # Stable low-pass: all poles inside the unit circle.
        from repro.core.coefficients import low_pass

        assert spectral_radius(low_pass(2)) < 1.0
        # Fibonacci: golden ratio.
        assert spectral_radius(Signature.parse("(1: 1, 1)")) == pytest.approx(
            (1 + 5**0.5) / 2
        )

    def test_predict_table_overflow_log_space(self):
        sig = Signature.parse("(1: 1.05)")
        # ln(1.05) * 2047 = 99.9 > ln(float32 max) = 88.7
        assert predict_table_overflow(sig, 2048, np.float32)
        assert not predict_table_overflow(sig, 1024, np.float32)
        assert not predict_table_overflow(sig, 2048, np.float64)
        # Stable or neutral signatures never overflow.
        assert not predict_table_overflow(Signature.parse("(1: 1)"), 1 << 20, np.float32)
        # Integer tables wrap, not overflow.
        assert not predict_table_overflow(Signature.parse("(1: 3)"), 4096, np.int32)

    def test_factor_table_carries_prediction(self):
        sig = Signature.parse("(1: 1.05)")
        risky = CorrectionFactorTable.build(sig, 2048, np.float32)
        assert risky.overflow_risk
        assert risky.spectral_radius == pytest.approx(1.05)
        safe = CorrectionFactorTable.build(sig, 256, np.float32)
        assert not safe.overflow_risk
        integer = CorrectionFactorTable.build(Signature.parse("(1: 3)"), 64, np.int32)
        assert integer.spectral_radius is None
        assert not integer.overflow_risk


class TestResilientSolver:
    def test_healthy_solve_is_single_attempt(self):
        solver = ResilientSolver("(1: 1)")
        x = np.arange(64, dtype=np.int32)
        report = solver.solve_with_report(x)
        assert report.ok and not report.degraded
        assert [a.outcome for a in report.attempts] == ["ok"]
        np.testing.assert_array_equal(report.output, np.cumsum(x, dtype=np.int32))

    def test_float32_overflow_recovered_by_promotion(self):
        """The acceptance case: an unstable signature at a length where
        float32 overflows but float64 does not.  The chain must promote
        and land within reference tolerance."""
        solver = ResilientSolver("(1: 1.05)")
        x = np.ones(4096, dtype=np.float32)
        report = solver.solve_with_report(x)
        assert report.ok
        assert report.dtype == np.float64
        assert report.engine == "plr"  # recovered, not serial-fallback
        assert "dtype promoted float32 -> float64" in report.degradations
        assert [a.outcome for a in report.attempts] == ["numerical", "ok"]
        reference = serial_full(
            x, Signature.parse("(1: 1.05)"), dtype=np.float64
        )
        assert np.isfinite(report.output).all()
        verdict = compare_results(report.output, reference)
        assert verdict.ok, verdict.describe()

    def test_table_overflow_prediction_triggers_before_solving(self):
        """With a chunk size whose factor table saturates, the chain
        must reject the attempt up front (prediction, not detection)."""
        solver = ResilientSolver(
            "(1: 1.05)",
            chunk_size=4096,
            policy=FallbackPolicy(promote_dtype=False),
        )
        x = np.zeros(8192, dtype=np.float32)
        x[-2] = 1e-30  # output stays tiny: only the table is at risk
        report = solver.solve_with_report(x)
        assert report.ok
        first = report.attempts[0]
        assert first.outcome == "numerical"
        assert "predicted" in first.detail
        assert any("chunk size reduced" in d for d in report.degradations)

    def test_chunk_shrink_halves_until_safe(self):
        solver = ResilientSolver(
            "(1: 1.05)",
            chunk_size=4096,
            policy=FallbackPolicy(promote_dtype=False, min_chunk_size=64),
        )
        x = np.zeros(8192, dtype=np.float32)
        x[-2] = 1e-30
        report = solver.solve_with_report(x)
        assert report.ok and report.engine == "plr"
        # 4096 -> 2048 (still predicted to overflow) -> 1024 (safe)
        assert report.attempts[-1].chunk_size == 1024

    def test_sim_corruption_caught_by_paired_verification(self, machine):
        plan = FaultPlan.single(FaultKind.BIT_FLIP_CARRY, bit=30)
        solver = ResilientSolver(
            "(1: 1)", machine=machine, engine="sim", fault=plan,
            policy=FallbackPolicy(max_retries=1),
        )
        x = np.arange(160, dtype=np.int32)
        report = solver.solve_with_report(x)
        assert report.ok
        assert report.engine == "serial"  # fault plan corrupts every retry
        assert report.attempts[0].outcome == "corrupt"
        assert report.fault_events  # the injections were observed
        np.testing.assert_array_equal(report.output, np.cumsum(x, dtype=np.int32))

    def test_sim_deadlock_retries_then_serial(self, machine):
        plan = FaultPlan.single(FaultKind.DROP_GLOBAL_FLAG, chunks=(0,))
        solver = ResilientSolver(
            "(1: 1)", machine=machine, engine="sim", fault=plan,
            deadlock_rounds=50, policy=FallbackPolicy(max_retries=1),
        )
        x = np.arange(160, dtype=np.int32)
        report = solver.solve_with_report(x)
        assert report.ok and report.engine == "serial"
        assert [a.outcome for a in report.attempts] == ["deadlock", "deadlock", "ok"]
        assert report.attempts[0].seed != report.attempts[1].seed

    def test_serial_fallback_disabled_raises_typed(self, machine):
        plan = FaultPlan.single(FaultKind.DROP_GLOBAL_FLAG, chunks=(0,))
        solver = ResilientSolver(
            "(1: 1)", machine=machine, engine="sim", fault=plan,
            deadlock_rounds=50,
            policy=FallbackPolicy(max_retries=0, serial_fallback=False),
        )
        x = np.arange(160, dtype=np.int32)
        report = solver.solve_with_report(x)
        assert not report.ok
        assert isinstance(report.error, DeadlockError)
        with pytest.raises(DeadlockError):
            solver.solve(x)

    def test_exceeded_deadline_goes_serial(self):
        solver = ResilientSolver("(1: 1)", policy=FallbackPolicy(deadline_s=0.0))
        x = np.arange(64, dtype=np.int32)
        report = solver.solve_with_report(x)
        assert report.ok and report.engine == "serial"
        assert any("deadline" in d for d in report.degradations)

    def test_nonfinite_input_goes_straight_to_serial(self):
        solver = ResilientSolver("(0.2: 0.8)")
        x = np.ones(64, dtype=np.float32)
        x[5] = np.nan
        report = solver.solve_with_report(x)
        assert report.ok and report.engine == "serial"
        assert len(report.attempts) == 1  # no parallel attempt wasted

    def test_report_describe_is_readable(self):
        solver = ResilientSolver("(1: 1.05)")
        report = solver.solve_with_report(np.ones(4096, dtype=np.float32))
        text = report.describe()
        assert "OK via plr" in text
        assert "dtype promoted" in text

    def test_invalid_policy_and_engine_rejected(self):
        with pytest.raises(ValueError, match="verify"):
            FallbackPolicy(verify="maybe")
        with pytest.raises(ValueError, match="engine"):
            ResilientSolver("(1: 1)", engine="fpga")


class TestFactorCache:
    def test_clear_factor_cache(self):
        from repro.plr.solver import PLRSolver, _cached_table, clear_factor_cache

        clear_factor_cache()
        solver = PLRSolver("(1: 2, -1)")
        solver.solve(np.arange(2048, dtype=np.int32))
        assert _cached_table.cache_info().currsize > 0
        clear_factor_cache()
        assert _cached_table.cache_info().currsize == 0
        # Solving again after a clear still works (cold rebuild).
        out = solver.solve(np.arange(16, dtype=np.int32))
        assert out.shape == (16,)

    def test_cache_key_normalizes_dtype_spelling(self):
        from repro.plr.solver import _cached_table, clear_factor_cache
        from repro.plr.planner import plan_execution
        from repro.plr.solver import PLRSolver

        clear_factor_cache()
        solver = PLRSolver("(1: 1)")
        plan = plan_execution(Signature.parse("(1: 1)"), 2048)
        a = solver.factor_table(plan, np.float32)
        b = solver.factor_table(plan, np.dtype("float32"))
        assert a is b  # one cache entry for both spellings
        clear_factor_cache()


class TestChaosHarness:
    def test_random_fault_plan_is_reproducible(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        assert random_fault_plan(rng1, 10, seed=1) == random_fault_plan(
            rng2, 10, seed=1
        )

    def test_unknown_recurrence_typed_error(self):
        with pytest.raises(ReproError, match="unknown Table 1"):
            run_chaos(cases=1, recurrences=["nope"])

    def test_sweep_outcome_accounting(self):
        report = run_chaos(cases=12, seed=99)
        assert len(report.outcomes) == 12
        assert sum(report.counts().values()) == 12
        assert "12 cases" in report.describe()
        # Typed errors are only legal when the serial fallback was off.
        for outcome in report.outcomes:
            if outcome.status == "typed_error":
                assert not outcome.case.serial_fallback

    @pytest.mark.chaos
    def test_chaos_invariant_200_cases(self):
        """The acceptance sweep: >= 200 random (fault plan x scheduler
        seed x recurrence) combinations, every one ending in a correct
        output or a typed error.  Fully seeded; a failure names the
        case that reproduces it."""
        report = run_chaos(cases=200, seed=20180324)
        assert len(report.outcomes) == 200
        assert report.ok, report.describe()
        # The sweep must actually exercise faults, degradations, and
        # every recurrence family — otherwise it proves nothing.
        assert sum(o.fault_events for o in report.outcomes) > 100
        assert sum(1 for o in report.outcomes if o.degraded) > 20
        assert len({o.case.recurrence for o in report.outcomes}) == 11


class TestNestedDegradationOrdering:
    """Satellite of the serving PR: the fallback chain's attempt record
    must pin the exact degradation sequence when failures nest."""

    def test_worker_death_then_overflow_then_promotion(self):
        """process pool dies -> single-process fallback (no retry
        consumed) -> float32 overflow detected -> dtype promotion ->
        success.  The SolveReport must record exactly that story, in
        that order."""
        from repro.parallel.sharding import ShardOptions

        solver = ResilientSolver(
            "(1: 1.05)",
            backend="process",
            workers=2,
            shard_options=ShardOptions(workers=2, inject="die"),
        )
        x = np.ones(4096, dtype=np.float32)
        report = solver.solve_with_report(x)
        assert report.ok
        assert report.engine == "plr"  # recovered, not serial fallback
        assert report.dtype == np.float64
        assert [a.outcome for a in report.attempts] == [
            "worker", "numerical", "ok",
        ]
        assert report.degradations == [
            "process backend failed: single-process fallback",
            "dtype promoted float32 -> float64",
        ]
        # The worker attempt kept the original dtype; promotion only
        # happened after the overflow was detected single-process.
        assert report.attempts[0].dtype == "float32"
        assert report.attempts[1].dtype == "float32"
        assert report.attempts[2].dtype == "float64"
        reference = serial_full(x, Signature.parse("(1: 1.05)"), dtype=np.float64)
        verdict = compare_results(report.output, reference)
        assert verdict.ok, verdict.describe()

    def test_worker_death_alone_consumes_no_retry(self):
        from repro.parallel.sharding import ShardOptions

        solver = ResilientSolver(
            "(1: 1)",
            backend="process",
            workers=2,
            policy=FallbackPolicy(max_retries=0),
            shard_options=ShardOptions(workers=2, inject="die"),
        )
        # Below ~2k elements the solver plans a single slab and never
        # touches the pool; the injection needs a real sharded run.
        x = np.arange(4096, dtype=np.int32)
        report = solver.solve_with_report(x)
        assert report.ok and report.engine == "plr"
        assert [a.outcome for a in report.attempts] == ["worker", "ok"]
        assert report.degradations == [
            "process backend failed: single-process fallback",
        ]
        np.testing.assert_array_equal(report.output, np.cumsum(x, dtype=np.int32))


class TestChaosExtensions:
    """Satellites of the serving PR: the chaos sweep reaches the
    process-sharded backend and the batch engine's mixed queues."""

    @pytest.mark.chaos
    @pytest.mark.parametrize("inject", ["die", "hang"])
    def test_chaos_process_backend_sharded(self, inject):
        """Worker faults in the real process pool (death and hang) must
        resolve to a correct output via the single-process fallback —
        the resilience invariant on the sharded path."""
        from repro.parallel.sharding import ShardOptions

        for name in ("prefix_sum", "order2_prefix_sum", "high_pass_1"):
            recurrence = Recurrence(table1_signatures()[name])
            values = make_values(recurrence, 4096)
            solver = ResilientSolver(
                recurrence,
                backend="process",
                workers=2,
                shard_options=ShardOptions(
                    workers=2, timeout_s=0.5, inject=inject
                ),
            )
            report = solver.solve_with_report(values)
            assert report.ok, report.describe()
            assert any("single-process fallback" in d for d in report.degradations)
            expected = serial_full(
                values, recurrence.signature, dtype=report.output.dtype
            )
            verdict = compare_results(report.output, expected)
            assert verdict.ok, f"{name}/{inject}: {verdict.describe()}"

    @pytest.mark.chaos
    def test_engine_chaos_mixed_queue(self):
        """One BatchEngine pass over a queue interleaving healthy
        requests with empties, NaN poison, float32 overflow bombs,
        fractional-coefficient integers, and pre-expired deadlines:
        every outcome correct or typed."""
        from repro.resilience.chaos import run_engine_chaos

        report = run_engine_chaos(seed=20180324, requests=64)
        assert report.ok, report.describe()
        counts = report.counts()
        assert counts.get("expired:typed_error", 0) >= 8
        assert counts.get("nan_poisoned:correct", 0) >= 8
        assert counts.get("overflow:correct", 0) >= 8
