"""The substrate under unusual machine shapes.

The paper argues the algorithm fits *any* hierarchy ("the presented
algorithm, parallelization technique, and even most of the code
optimizations are not GPU specific").  The functional simulator should
therefore produce correct results for machines with different warp
widths, block sizes, and SM counts — not just the two shipped specs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.gpusim.executor import SimulatedPLR
from repro.gpusim.spec import MachineSpec


def make_machine(num_sms: int, warp: int, block: int) -> MachineSpec:
    return MachineSpec(
        name=f"sms{num_sms}-warp{warp}-block{block}",
        num_sms=num_sms,
        cores_per_sm=warp * 2,
        warp_size=warp,
        max_threads_per_block=block,
        max_threads_per_sm=block * 2,
        registers_per_sm=4096,
        shared_memory_per_sm=8192,
        shared_memory_per_block=4096,
        l2_cache_bytes=2048,
        l2_line_bytes=32,
        global_memory_bytes=1 << 26,
        peak_bandwidth_bytes=1e9,
        core_clock_hz=1e9,
        memory_clock_hz=1e9,
        kernel_launch_latency_s=1e-6,
        baseline_context_bytes=1 << 16,
    )


MACHINES = [
    make_machine(1, 2, 8),  # tiny: single SM, 2-lane warps
    make_machine(2, 8, 32),  # medium
    make_machine(4, 4, 8),  # many SMs, warp == half-block
    make_machine(3, 16, 16),  # block == one warp (no shared-memory phase)
]

# Phase 1's doubling requires power-of-two thread blocks (the paper's
# are 1024); the simulator rejects anything else.


def test_non_power_of_two_block_rejected(rng):
    from repro.core.errors import SimulationError

    machine = make_machine(1, 2, 6)
    values = rng.integers(-5, 5, 12).astype(np.int32)
    with pytest.raises(SimulationError, match="power of two"):
        SimulatedPLR(Recurrence.parse("(1: 1)"), machine, seed=0).run(values)


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("text", ["(1: 1)", "(1: 2, -1)", "(1: 0, 0, 1)"])
def test_simulator_correct_on_any_shape(machine, text, rng):
    recurrence = Recurrence.parse(text)
    values = rng.integers(-9, 9, 500).astype(np.int32)
    result = SimulatedPLR(recurrence, machine, seed=1).run(values)
    np.testing.assert_array_equal(
        result.output, serial_full(values, recurrence.signature)
    )


def test_single_warp_block_uses_no_shared_memory(rng):
    # When the block is one warp, every merge is a shuffle.
    machine = make_machine(3, 16, 16)
    recurrence = Recurrence.parse("(1: 2, -1)")
    values = rng.integers(-9, 9, 256).astype(np.int32)
    result = SimulatedPLR(recurrence, machine, seed=0).run(values)
    stats = result.block_stats[0]
    assert stats.shuffles > 0
    assert stats.shared_reads == 0


def test_single_sm_machine_serializes_but_completes(rng):
    machine = make_machine(1, 2, 8)
    recurrence = Recurrence.parse("(1: 1)")
    values = rng.integers(-9, 9, 640).astype(np.int32)
    result = SimulatedPLR(recurrence, machine, seed=4).run(values)
    np.testing.assert_array_equal(
        result.output, np.cumsum(values, dtype=np.int32)
    )


@settings(max_examples=20, deadline=None)
@given(
    warp_exp=st.integers(1, 4),
    block_exp=st.integers(0, 2),
    sms=st.integers(1, 4),
    x=st.integers(1, 3),
    n=st.integers(1, 600),
    seed=st.integers(0, 500),
)
def test_simulator_property_over_machine_space(warp_exp, block_exp, sms, x, n, seed):
    """Random (warp, block, SM, grain) points all compute correctly."""
    warp = 1 << warp_exp
    block = warp * (1 << block_exp)
    machine = make_machine(sms, warp, block)
    recurrence = Recurrence.parse("(1: 1, 1)")
    gen = np.random.default_rng(seed)
    values = gen.integers(-5, 5, n).astype(np.int32)
    sim = SimulatedPLR(
        recurrence, machine, values_per_thread=x, seed=seed % 13
    )
    result = sim.run(values)
    np.testing.assert_array_equal(
        result.output, serial_full(values, recurrence.signature)
    )
