"""z-transform utilities: cascades, stability, responses."""

import math

import numpy as np
import pytest

from repro.core.coefficients import low_pass, single_pole_low_pass
from repro.core.errors import SignatureError
from repro.core.signature import Signature
from repro.core.ztransform import (
    cascade,
    cascade_many,
    convolve,
    frequency_response,
    impulse_response,
    is_stable,
    poles,
    repeat,
    signature_from_transfer,
    transfer_function,
)


class TestConvolve:
    def test_scalar(self):
        assert convolve((2,), (3,)) == (6,)

    def test_binomial_square(self):
        # (1 + x)^2 = 1 + 2x + x^2
        assert convolve((1, 1), (1, 1)) == (1, 2, 1)

    def test_exact_integers(self):
        out = convolve((1, -2, 1), (1, 1))
        assert out == (1, -1, -1, 1)
        assert all(isinstance(v, int) for v in out)

    def test_commutative(self):
        p, q = (1, 2, 3), (4, 5)
        assert convolve(p, q) == convolve(q, p)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convolve((), (1,))


class TestTransferRoundtrip:
    @pytest.mark.parametrize(
        "text", ["(1: 1)", "(1: 2, -1)", "(0.2: 0.8)", "(0.9, -0.9: 0.8)"]
    )
    def test_roundtrip(self, text):
        sig = Signature.parse(text)
        num, den = transfer_function(sig)
        assert signature_from_transfer(num, den) == sig

    def test_denominator_sign_convention(self):
        _, den = transfer_function(Signature.parse("(1: 2, -1)"))
        assert den == (1, -2, 1)

    def test_non_monic_rejected(self):
        with pytest.raises(SignatureError):
            signature_from_transfer((1,), (2, 1))

    def test_trivial_denominator_rejected(self):
        with pytest.raises(SignatureError):
            signature_from_transfer((1,), (1,))


class TestCascade:
    def test_two_stage_low_pass(self):
        lp1 = single_pole_low_pass(0.8)
        lp2 = cascade(lp1, lp1)
        assert math.isclose(float(lp2.feedforward[0]), 0.04, abs_tol=1e-12)
        assert math.isclose(float(lp2.feedback[0]), 1.6, abs_tol=1e-12)
        assert math.isclose(float(lp2.feedback[1]), -0.64, abs_tol=1e-12)

    def test_repeat_matches_manual_cascade(self):
        lp1 = single_pole_low_pass(0.8)
        assert repeat(lp1, 3) == cascade(cascade(lp1, lp1), lp1)

    def test_cascade_many(self):
        lp1 = single_pole_low_pass(0.8)
        assert cascade_many([lp1, lp1]) == cascade(lp1, lp1)

    def test_cascade_many_empty_rejected(self):
        with pytest.raises(SignatureError):
            cascade_many([])

    def test_repeat_zero_rejected(self):
        with pytest.raises(SignatureError):
            repeat(single_pole_low_pass(0.8), 0)

    def test_cascade_order_adds(self):
        a = Signature.parse("(1: 2, -1)")
        b = Signature.parse("(1: 1)")
        assert cascade(a, b).order == 3

    def test_cascade_semantics(self, rng):
        """Cascaded signature == running the filters back to back."""
        from repro.core.reference import serial_full

        a = single_pole_low_pass(0.7)
        b = single_pole_low_pass(0.9)
        combined = cascade(a, b)
        x = rng.standard_normal(500).astype(np.float64)
        two_step = serial_full(serial_full(x, a, dtype=np.float64), b, dtype=np.float64)
        one_step = serial_full(x, combined, dtype=np.float64)
        np.testing.assert_allclose(one_step, two_step, rtol=1e-9, atol=1e-9)

    def test_integer_cascade_stays_integer(self):
        a = Signature.parse("(1: 1)")
        assert cascade(a, a) == Signature.parse("(1: 2, -1)")
        assert cascade(a, a).is_integer

    def test_higher_order_prefix_sum_is_cascaded_prefix_sum(self):
        ps = Signature.prefix_sum()
        assert cascade_many([ps, ps, ps]) == Signature.higher_order_prefix_sum(3)


class TestStability:
    def test_low_pass_stable(self):
        for stages in (1, 2, 3):
            assert is_stable(low_pass(stages))

    def test_prefix_sum_not_stable(self):
        assert not is_stable(Signature.prefix_sum())

    def test_explosive_not_stable(self):
        assert not is_stable(Signature.parse("(1: 1, 1)"))  # Fibonacci

    def test_poles_of_single_pole(self):
        p = poles(single_pole_low_pass(0.8))
        assert len(p) == 1
        assert math.isclose(abs(p[0]), 0.8, rel_tol=1e-9)

    def test_double_pole(self):
        p = sorted(abs(z) for z in poles(low_pass(2)))
        assert all(math.isclose(m, 0.8, rel_tol=1e-6) for m in p)


class TestResponses:
    def test_impulse_response_of_prefix_sum_is_ones(self):
        h = impulse_response(Signature.prefix_sum(), 10)
        np.testing.assert_array_equal(h, np.ones(10))

    def test_impulse_response_geometric_decay(self):
        h = impulse_response(single_pole_low_pass(0.5), 8)
        expected = 0.5 * np.power(0.5, np.arange(8))
        np.testing.assert_allclose(h, expected, rtol=1e-12)

    def test_impulse_response_length_zero(self):
        assert impulse_response(Signature.prefix_sum(), 0).size == 0

    def test_impulse_response_negative_rejected(self):
        with pytest.raises(ValueError):
            impulse_response(Signature.prefix_sum(), -1)

    def test_low_pass_frequency_shape(self):
        sig = low_pass(2)
        h = frequency_response(sig, [0.0, 0.05, 0.45])
        mags = np.abs(h)
        assert math.isclose(mags[0], 1.0, rel_tol=1e-9)  # unity at DC
        assert mags[0] > mags[1] > mags[2]  # monotone falling

    def test_high_pass_frequency_shape(self):
        from repro.core.coefficients import high_pass

        h = frequency_response(high_pass(1), [0.0, 0.2, 0.5])
        mags = np.abs(h)
        assert mags[0] < 1e-12  # zero at DC
        assert mags[2] > mags[1] > mags[0]
