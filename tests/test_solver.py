"""The end-to-end PLR solver against the serial reference.

This is the paper's validation methodology applied to our executable
PLR: every Table 1 recurrence, a ladder of sizes including non-powers
of two and degenerate ones, integer exactness and float tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.core.validation import assert_valid
from repro.plr.solver import PLRSolver, plr_solve
from tests.conftest import make_values

SIZES = [1, 2, 3, 31, 32, 33, 1000, 1024, 4095, 20000]


class TestTable1EndToEnd:
    @pytest.mark.parametrize("n", [999, 8192, 50000])
    def test_all_recurrences(self, table1_recurrence, n):
        values = make_values(table1_recurrence, n)
        got = PLRSolver(table1_recurrence).solve(values)
        expected = serial_full(values, table1_recurrence.signature)
        assert_valid(got, expected, context=str(table1_recurrence))


class TestSizeLadder:
    @pytest.mark.parametrize("n", SIZES)
    def test_prefix_sum_every_size(self, n, rng):
        values = rng.integers(-50, 50, n).astype(np.int32)
        got = plr_solve("(1: 1)", values)
        np.testing.assert_array_equal(got, np.cumsum(values, dtype=np.int32))

    @pytest.mark.parametrize("n", SIZES)
    def test_order2_every_size(self, n, rng):
        values = rng.integers(-20, 20, n).astype(np.int32)
        got = plr_solve("(1: 2, -1)", values)
        np.testing.assert_array_equal(got, serial_full(values, Signature.parse("(1: 2, -1)")))

    @pytest.mark.parametrize("n", [1, 5, 1023, 1025, 10000])
    def test_filter_every_size(self, n, rng):
        values = rng.standard_normal(n).astype(np.float32)
        got = plr_solve("(0.04: 1.6, -0.64)", values)
        expected = serial_full(values, Signature.parse("(0.04: 1.6, -0.64)"))
        assert_valid(got, expected)

    def test_non_power_of_two_large(self, rng):
        # "PLR supports input sizes that are not powers of two."
        n = 3 * 1024 * 7 + 13
        values = rng.integers(-5, 5, n).astype(np.int32)
        got = plr_solve("(1: 1)", values)
        np.testing.assert_array_equal(got, np.cumsum(values, dtype=np.int32))


class TestDtypes:
    def test_int64_supported(self, rng):
        values = rng.integers(-100, 100, 5000).astype(np.int64)
        got = PLRSolver("(1: 1)").solve(values)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, np.cumsum(values))

    def test_float64_override(self, rng):
        values = rng.standard_normal(5000)
        got = PLRSolver("(1: 0.5)").solve(values, dtype=np.float64)
        assert got.dtype == np.float64
        expected = serial_full(values, Signature.parse("(1: 0.5)"), dtype=np.float64)
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_int_values_float_signature(self, rng):
        values = rng.integers(-5, 5, 3000).astype(np.int32)
        got = PLRSolver("(0.2: 0.8)").solve(values)
        assert got.dtype == np.float32

    def test_int32_wraparound_matches_serial(self):
        # Fibonacci blows through int32 almost immediately; parallel
        # and serial wrap-around must agree bit for bit.
        values = np.ones(20000, dtype=np.int32)
        got = plr_solve("(1: 1, 1)", values)
        expected = serial_full(values, Signature.parse("(1: 1, 1)"))
        np.testing.assert_array_equal(got, expected)


class TestAPI:
    def test_accepts_string(self):
        solver = PLRSolver("(1: 1)")
        assert solver.recurrence.signature == Signature.prefix_sum()

    def test_accepts_signature(self):
        solver = PLRSolver(Signature.prefix_sum())
        assert solver.recurrence.order == 1

    def test_accepts_recurrence(self):
        rec = Recurrence.parse("(1: 1)")
        assert PLRSolver(rec).recurrence is rec

    def test_rejects_2d_input(self, rng):
        with pytest.raises(ValueError):
            PLRSolver("(1: 1)").solve(rng.integers(0, 5, (4, 4)))

    def test_artifacts_exposed(self, rng):
        values = rng.integers(-5, 5, 3000).astype(np.int32)
        solver = PLRSolver("(1: 2, -1)")
        out, artifacts = solver.solve_with_artifacts(values)
        assert artifacts.plan.num_chunks == artifacts.partial.shape[0]
        assert artifacts.table.chunk_size == artifacts.plan.chunk_size
        assert artifacts.factor_plan.table is artifacts.table
        # Phase 1 partial is locally correct per chunk.
        m = artifacts.plan.chunk_size
        padded = np.zeros(artifacts.plan.padded_n, dtype=np.int32)
        padded[:3000] = values
        first_chunk = serial_full(padded[:m], Signature.parse("(1: 2, -1)"))
        np.testing.assert_array_equal(artifacts.partial[0], first_chunk)

    def test_explicit_plan_respected(self, rng):
        values = rng.integers(-5, 5, 5000).astype(np.int32)
        solver = PLRSolver("(1: 1)")
        plan = solver.plan_for(5000)
        out = solver.solve(values, plan=plan)
        np.testing.assert_array_equal(out, np.cumsum(values, dtype=np.int32))

    def test_input_not_modified(self, rng):
        values = rng.integers(-5, 5, 2000).astype(np.int32)
        snapshot = values.copy()
        plr_solve("(1: 2, -1)", values)
        np.testing.assert_array_equal(values, snapshot)


class TestRecurrenceObject:
    def test_parse_and_str(self):
        rec = Recurrence.parse("(1: 2, -1)")
        assert str(rec) == "(1: 2, -1)"
        assert rec.order == 2

    def test_classification_cached(self):
        rec = Recurrence.parse("(1: 1)")
        assert rec.classification is rec.classification

    def test_has_map_stage(self):
        assert not Recurrence.parse("(1: 1)").has_map_stage
        assert Recurrence.parse("(0.2: 0.8)").has_map_stage
        assert Recurrence.parse("(0.9, -0.9: 0.8)").has_map_stage

    def test_evaluate_is_serial(self, rng):
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-5, 5, 100).astype(np.int32)
        np.testing.assert_array_equal(
            rec.evaluate(values), np.cumsum(values, dtype=np.int32)
        )

    def test_apply_map_stage(self, rng):
        rec = Recurrence.parse("(0.9, -0.9: 0.8)")
        values = rng.standard_normal(50).astype(np.float32)
        mapped = rec.apply_map_stage(values)
        expected = 0.9 * values
        expected[1:] -= 0.9 * values[:-1]
        np.testing.assert_allclose(mapped, expected, rtol=1e-5)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3000),
    order=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_solver_property_random_recurrences(n, order, seed):
    """Random integer recurrences of random sizes match the oracle."""
    gen = np.random.default_rng(seed)
    feedback = tuple(int(v) for v in gen.integers(-3, 4, order))
    if feedback[-1] == 0:
        feedback = feedback[:-1] + (1,)
    sig = Signature((1,), feedback)
    values = gen.integers(-10, 10, n).astype(np.int32)
    got = PLRSolver(Recurrence(sig)).solve(values)
    expected = serial_full(values, sig)
    np.testing.assert_array_equal(got, expected)


class TestFactorCacheKey:
    """Regression guard: the factor-table cache key must include the
    working dtype (and chunk size) — a key of signature alone would
    hand a float32 solve an int32 table built moments earlier."""

    def test_same_signature_two_dtypes_two_entries(self, rng):
        from repro.plr.solver import (
            cached_factor_table,
            clear_factor_cache,
            factor_cache_stats,
        )

        clear_factor_cache()
        sig = Signature.parse("(1: 2, -1)").recursive_part()
        t32 = cached_factor_table(sig, 64, np.float32)
        t64 = cached_factor_table(sig, 64, np.float64)
        stats = factor_cache_stats()
        assert stats["misses"] == 2  # distinct dtypes -> distinct entries
        assert t32.factors.dtype == np.float32
        assert t64.factors.dtype == np.float64
        # Same triple again: pure hits, no rebuild.
        cached_factor_table(sig, 64, np.float32)
        cached_factor_table(sig, 64, np.float64)
        after = factor_cache_stats()
        assert after["misses"] == 2
        assert after["hits"] >= stats["hits"] + 2

    def test_solves_at_two_dtypes_stay_correct(self, rng):
        from repro.plr.solver import clear_factor_cache

        clear_factor_cache()
        values = rng.standard_normal(5000).astype(np.float32)
        solver = PLRSolver("(0.2: 0.8)")
        out32 = solver.solve(values)
        out64 = solver.solve(values, dtype=np.float64)
        assert out32.dtype == np.float32
        assert out64.dtype == np.float64
        expected = serial_full(values, Signature.parse("(0.2: 0.8)"), dtype=np.float64)
        assert_valid(out64, expected)
        assert_valid(out32, expected.astype(np.float32))

    def test_chunk_size_is_part_of_the_key(self):
        from repro.plr.solver import (
            cached_factor_table,
            clear_factor_cache,
            factor_cache_stats,
        )

        clear_factor_cache()
        sig = Signature.parse("(1: 1)").recursive_part()
        a = cached_factor_table(sig, 64, np.int32)
        b = cached_factor_table(sig, 128, np.int32)
        assert factor_cache_stats()["misses"] == 2
        assert a.factors.shape[1] == 64
        assert b.factors.shape[1] == 128

    def test_dtype_spelling_variants_share_an_entry(self):
        from repro.plr.solver import (
            cached_factor_table,
            clear_factor_cache,
            factor_cache_stats,
        )

        clear_factor_cache()
        sig = Signature.parse("(1: 1)").recursive_part()
        cached_factor_table(sig, 64, np.float32)
        cached_factor_table(sig, 64, "float32")
        cached_factor_table(sig, 64, np.dtype("float32"))
        assert factor_cache_stats()["misses"] == 1
