"""Shared fixtures: RNG, machines, and the Table 1 recurrence matrix."""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.core.coefficients import table1_signatures
from repro.core.recurrence import Recurrence
from repro.gpusim.spec import MachineSpec

TABLE1_NAMES = tuple(table1_signatures().keys())


@pytest.fixture(autouse=True)
def _isolated_tuning(tmp_path, monkeypatch):
    """Every test sees a cold calibration table.

    The planner and ``backend="auto"`` consult the process-wide tuning
    policy by default, so a developer's real ``~/.cache/plr/tuning.json``
    could otherwise steer test outcomes.  Point the lookup at an empty
    per-test path and drop the cached policy singleton on both sides.
    """
    from repro.tune.policy import reset_default_policy

    monkeypatch.setenv("PLR_TUNE_DB", str(tmp_path / "tuning.json"))
    reset_default_policy()
    yield
    reset_default_policy()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20180324)  # the conference date


@pytest.fixture(scope="session")
def titan_x() -> MachineSpec:
    return MachineSpec.titan_x()


@pytest.fixture(scope="session")
def test_gpu() -> MachineSpec:
    return MachineSpec.small_test_gpu()


@pytest.fixture(params=TABLE1_NAMES)
def table1_recurrence(request) -> Recurrence:
    """Parametrizes a test over all eleven Table 1 recurrences."""
    return Recurrence(table1_signatures()[request.param])


def make_values(recurrence: Recurrence, n: int, seed: int = 7) -> np.ndarray:
    """Random input of the dtype the paper uses for this recurrence."""
    generator = np.random.default_rng(seed)
    if recurrence.is_integer:
        return generator.integers(-100, 100, size=n).astype(np.int32)
    return generator.standard_normal(n).astype(np.float32)


SERVE_TEST_TIMEOUT_S = 90.0
"""Hard wall-clock ceiling for one ``serve``-marked test.

The serving layer's failure mode of last resort is a hang — an awaited
reply that never comes — and a hung asyncio test would otherwise stall
the whole suite.  A SIGALRM fired from outside the event loop cuts
through any stuck ``await`` (pytest-timeout is not available in this
environment, so the guard is implemented here).
"""


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if item.get_closest_marker("serve") is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"hard timeout: {item.nodeid} exceeded {SERVE_TEST_TIMEOUT_S:.0f}s "
            "(a serving-layer test hung)"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, SERVE_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
