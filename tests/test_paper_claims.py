"""The paper's evaluation claims, as executable assertions.

Every test here pins one sentence of Section 6 to the reproduced
model.  Absolute numbers are not expected to match a machine we don't
have; the *shape* — who wins, by roughly what factor, where crossovers
fall — is what the paper argues from and what these tests check.
EXPERIMENTS.md tabulates paper-vs-measured for each.
"""

import pytest

from repro.eval.figures import figure10_throughputs, figure_definitions
from repro.eval.harness import run_experiment

LARGEST = 2**30
TABLE_N = 2**26


@pytest.fixture(scope="module")
def figures():
    defs = figure_definitions()
    return {fid: run_experiment(d, validate=False) for fid, d in defs.items()}


def big(figures, fid, code):
    series = figures[fid].series[code]
    point = series.largest_supported()
    assert point is not None, (fid, code)
    return point[1]


class TestFigure1PrefixSum:
    def test_plr_reaches_memcpy(self, figures):
        """'All three codes reach the throughput of memory copy.'"""
        memcpy = big(figures, "fig1", "memcpy")
        for code in ("PLR", "CUB", "SAM"):
            assert big(figures, "fig1", code) > 0.90 * memcpy, code

    def test_scan_half_throughput(self, figures):
        """'The Scan code delivers about half the throughput.'"""
        ratio = big(figures, "fig1", "Scan") / big(figures, "fig1", "memcpy")
        assert 0.40 < ratio < 0.60

    def test_sam_fastest_small_inputs(self, figures):
        """'SAM is somewhat faster in the low range due to auto-tuning.'"""
        for n in (2**14, 2**15, 2**16):
            sam = figures["fig1"].series["SAM"].at(n)
            for code in ("CUB", "PLR", "Scan"):
                other = figures["fig1"].series[code].at(n)
                assert sam > other, (n, code)

    def test_plr_slower_mid_range(self, figures):
        """'PLR is a little slower than the other two in the mid-range.'"""
        n = 2**19
        plr = figures["fig1"].series["PLR"].at(n)
        assert plr < figures["fig1"].series["CUB"].at(n)
        assert plr < figures["fig1"].series["SAM"].at(n)

    def test_scan_size_cap(self, figures):
        """'[Scan] only supports problem sizes up to 2^29.'"""
        series = figures["fig1"].series["Scan"]
        assert series.at(2**29) is not None
        assert series.at(2**30) is None


class TestFigures23Tuples:
    def test_two_tuple_advantage(self, figures):
        """'On 2-tuples, it is 30% ... faster.'"""
        plr = big(figures, "fig2", "PLR")
        best_prior = max(big(figures, "fig2", "CUB"), big(figures, "fig2", "SAM"))
        assert plr / best_prior == pytest.approx(1.30, abs=0.15)

    def test_three_tuple_advantage(self, figures):
        """'... and on 3-tuples 17% faster.'"""
        plr = big(figures, "fig3", "PLR")
        best_prior = max(big(figures, "fig3", "CUB"), big(figures, "fig3", "SAM"))
        assert plr / best_prior == pytest.approx(1.17, abs=0.12)

    def test_plr_overtakes_in_mid_range(self, figures):
        """'In the mid-range, PLR outperforms CUB and starts to
        outperform SAM.'"""
        found = False
        for n in (2**21, 2**22, 2**23):
            series = figures["fig2"].series
            if series["PLR"].at(n) > series["CUB"].at(n) and series["PLR"].at(n) > series["SAM"].at(n):
                found = True
                break
        assert found

    def test_scan_tuple_collapse(self, figures):
        """Scan needs 6x/12x the accesses on 2-/3-tuples."""
        memcpy = big(figures, "fig2", "memcpy")
        assert big(figures, "fig2", "Scan") < 0.25 * memcpy
        assert big(figures, "fig3", "Scan") < 0.15 * memcpy


class TestFigures45HigherOrder:
    def test_ordering_sam_plr_cub(self, figures):
        """'CUB yields the lowest throughput, PLR is in the middle, and
        SAM the highest.'"""
        for fid in ("fig4", "fig5"):
            sam, plr, cub = (big(figures, fid, c) for c in ("SAM", "PLR", "CUB"))
            assert sam > plr > cub, fid

    def test_sam_lead_shrinks_with_order(self, figures):
        """'For order 2, [SAM] is 50% faster, for order 3 about 38%.'"""
        lead2 = big(figures, "fig4", "SAM") / big(figures, "fig4", "PLR")
        lead3 = big(figures, "fig5", "SAM") / big(figures, "fig5", "PLR")
        assert lead2 == pytest.approx(1.50, abs=0.15)
        assert lead3 == pytest.approx(1.38, abs=0.15)
        assert lead3 < lead2

    def test_plr_gains_on_cub_with_order(self, figures):
        """'PLR barely outperforms CUB [at order 2] ... significantly
        [at order 3].'"""
        gain2 = big(figures, "fig4", "PLR") / big(figures, "fig4", "CUB")
        gain3 = big(figures, "fig5", "PLR") / big(figures, "fig5", "CUB")
        assert 1.0 < gain2 < 1.15
        assert gain3 > gain2
        assert gain3 > 1.15

    def test_plr_matches_sam_at_smallest_sizes(self, figures):
        """'except at the smallest tested problem sizes, where PLR
        performs on par with SAM'.

        The loosest claim we track: both codes are launch-dominated at
        2^14 and our model charges PLR its look-back pipeline fill,
        so "on par" is asserted as within 4x (vs 1.5x at 2^20+ where
        the claim flips to SAM's favor).
        """
        plr = figures["fig4"].series["PLR"].at(2**14)
        sam = figures["fig4"].series["SAM"].at(2**14)
        assert plr > sam / 4


class TestFigures678LowPass:
    def test_plr_beats_alg3_everywhere(self, figures):
        """'It is also faster than Alg3' (which filters twice)."""
        for fid in ("fig6", "fig7", "fig8"):
            result = figures[fid]
            for idx, n in enumerate(result.definition.sizes):
                plr = result.series["PLR"]
                alg3 = result.series["Alg3"]
                if plr.supported[idx] and alg3.supported[idx]:
                    assert plr.throughput[idx] > alg3.throughput[idx], (fid, n)

    def test_rec_wins_below_one_million(self, figures):
        """'For inputs up to a million elements, Rec performs on par or
        is faster than PLR.'"""
        for n in (2**14, 2**16, 2**18):
            rec = figures["fig6"].series["Rec"].at(n)
            plr = figures["fig6"].series["PLR"].at(n)
            assert rec >= 0.95 * plr, n

    def test_plr_wins_above_one_million(self, figures):
        """'PLR is the fastest of the tested codes on the larger
        inputs' — crossover at the L2 capacity (~1M entries)."""
        for n in (2**21, 2**24, 2**27):
            plr = figures["fig6"].series["PLR"].at(n)
            for code in ("Rec", "Alg3", "Scan"):
                assert plr > figures["fig6"].series[code].at(n), (n, code)

    def test_plr1_reaches_memcpy(self, figures):
        """'On the single-stage filter, PLR reaches the throughput of
        memory copy for large problem sizes.'"""
        assert big(figures, "fig6", "PLR") > 0.90 * big(figures, "fig6", "memcpy")

    def test_rec_ratios_at_one_gb(self, figures):
        """'It is 1.90, 1.88, and 1.58 times faster than Rec on the
        1-, 2-, and 3-stage filters.'"""
        ratios = [
            big(figures, fid, "PLR") / big(figures, fid, "Rec")
            for fid in ("fig6", "fig7", "fig8")
        ]
        assert ratios[0] == pytest.approx(1.90, abs=0.25)
        assert ratios[1] == pytest.approx(1.88, abs=0.25)
        assert ratios[2] == pytest.approx(1.58, abs=0.25)
        assert ratios[2] < ratios[1]  # the lead narrows with order

    def test_throughput_decreases_with_order(self, figures):
        """'As we go to higher orders, the throughput of all four codes
        decreases' (PLR's fastest)."""
        plr = [big(figures, fid, "PLR") for fid in ("fig6", "fig7", "fig8")]
        assert plr[0] >= plr[1] >= plr[2]
        scan = [big(figures, fid, "Scan") for fid in ("fig6", "fig7", "fig8")]
        assert scan[0] > scan[1] > scan[2]


class TestFigure9HighPass:
    def test_consistent_drop_vs_low_pass(self, figures):
        """'this decrease is quite consistent and around 17% ...
        irrespective of the order.'"""
        pairs = [("fig9.1", "fig6"), ("fig9.2", "fig7"), ("fig9.3", "fig8")]
        for hp_id, lp_id in pairs:
            hp = big(figures, hp_id, "PLR")
            lp = big(figures, lp_id, "PLR")
            assert 0.70 < hp / lp < 0.97, (hp_id, hp / lp)

    def test_throughput_decreases_with_stages(self, figures):
        hp = [big(figures, fid, "PLR") for fid in ("fig9.1", "fig9.2", "fig9.3")]
        assert hp[0] > hp[1] > hp[2]

    def test_scan_is_slowest(self, figures):
        assert big(figures, "fig9.1", "Scan") < big(figures, "fig9.1", "PLR")


class TestFigure10Optimizations:
    @pytest.fixture(scope="class")
    def bars(self):
        return {bar.recurrence: bar for bar in figure10_throughputs()}

    def test_optimizations_never_hurt(self, bars):
        """'The optimizations help in all cases.'"""
        for name, bar in bars.items():
            assert bar.speedup >= 0.999, name

    def test_higher_order_gains_tiny(self, bars):
        """'On the higher-order prefix sums, they improve performance
        by only 3%.'"""
        for name in ("order2_prefix_sum", "order3_prefix_sum"):
            assert bars[name].speedup < 1.10, name

    def test_two_stage_lowpass_doubles(self, bars):
        """'on the two-stage low-pass filter, they more than double the
        throughput.'"""
        assert bars["low_pass_2"].speedup > 1.9

    def test_prefix_sum_zero_one_effect(self, bars):
        """'primarily due to treating correction factors of zero and
        one specially' — a solid (but not 2x-level) gain."""
        assert 1.25 < bars["prefix_sum"].speedup < 1.8

    def test_eleven_bars(self, bars):
        assert len(bars) == 11
