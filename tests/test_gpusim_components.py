"""GPU machine model components: spec, memory, L2, warps, shared memory."""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.gpusim.block import SharedMemory, ThreadBlock
from repro.gpusim.l2cache import AccessStreamSummary, L2Cache
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.scheduler import AtomicCounter, BlockYield, GridScheduler
from repro.gpusim.spec import MachineSpec
from repro.gpusim.warp import Warp


class TestSpec:
    def test_titan_x_section5_constants(self):
        spec = MachineSpec.titan_x()
        assert spec.num_sms == 24
        assert spec.total_cores == 3072
        assert spec.max_resident_threads == 49152
        assert spec.shared_memory_per_block == 48 * 1024
        assert spec.l2_cache_bytes == 2 * 1024 * 1024
        assert spec.peak_bandwidth_bytes == 336e9
        assert spec.core_clock_hz == 1.1e9
        assert spec.warp_size == 32
        assert spec.global_memory_bytes == 12 * 1024**3

    def test_small_gpu_is_consistent(self):
        spec = MachineSpec.small_test_gpu()
        assert spec.max_threads_per_block % spec.warp_size == 0
        assert spec.shared_memory_per_block <= spec.shared_memory_per_sm


class TestDeviceMemory:
    def test_alloc_free_accounting(self):
        mem = DeviceMemory(MachineSpec.titan_x())
        a = mem.alloc("input", 1000)
        b = mem.alloc("output", 2000)
        assert mem.allocated_bytes == 3000
        mem.free(a)
        assert mem.allocated_bytes == 2000
        assert mem.peak_bytes == 3000
        mem.free(b)

    def test_total_includes_context(self):
        machine = MachineSpec.titan_x()
        mem = DeviceMemory(machine)
        assert mem.total_bytes == machine.baseline_context_bytes

    def test_out_of_memory(self):
        mem = DeviceMemory(MachineSpec.small_test_gpu())
        with pytest.raises(SimulationError, match="out of device memory"):
            mem.alloc("huge", 1 << 40)

    def test_double_free(self):
        mem = DeviceMemory(MachineSpec.titan_x())
        a = mem.alloc("x", 10)
        mem.free(a)
        with pytest.raises(SimulationError, match="double free"):
            mem.free(a)

    def test_negative_alloc(self):
        mem = DeviceMemory(MachineSpec.titan_x())
        with pytest.raises(SimulationError):
            mem.alloc("bad", -1)


class TestL2Cache:
    def test_cold_misses_sequential(self):
        cache = L2Cache(capacity_bytes=1024, line_bytes=32)
        for addr in range(0, 1024, 4):
            cache.read(addr)
        assert cache.read_misses == 32  # 1024 / 32 lines
        assert cache.read_hits == 256 - 32

    def test_resident_reread_hits(self):
        cache = L2Cache(capacity_bytes=4096, line_bytes=32)
        for addr in range(0, 1024, 32):
            cache.read(addr)
        misses_before = cache.read_misses
        for addr in range(0, 1024, 32):
            cache.read(addr)
        assert cache.read_misses == misses_before  # all hits

    def test_streaming_reread_misses(self):
        # Working set 4x the capacity: the second pass misses again —
        # the Table 3 mechanism behind Alg3/Rec's doubled cold misses.
        cache = L2Cache(capacity_bytes=1024, line_bytes=32, associativity=8)
        span = 4096
        for _ in range(2):
            for addr in range(0, span, 32):
                cache.read(addr)
        assert cache.read_misses == 2 * span // 32

    def test_miss_bytes_unit(self):
        cache = L2Cache(capacity_bytes=1024, line_bytes=32)
        cache.read(0)
        assert cache.read_miss_bytes == 32

    def test_write_allocate(self):
        cache = L2Cache(capacity_bytes=1024, line_bytes=32)
        cache.write(0)
        assert cache.write_misses == 1
        cache.read(0)
        assert cache.read_hits == 1

    def test_straddling_access(self):
        cache = L2Cache(capacity_bytes=1024, line_bytes=32)
        cache.read(30, nbytes=4)  # crosses a line boundary
        assert cache.read_misses == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            L2Cache(capacity_bytes=100, line_bytes=32)

    def test_reset(self):
        cache = L2Cache(capacity_bytes=1024, line_bytes=32)
        cache.read(0)
        cache.reset_counters()
        assert cache.read_misses == 0


class TestAccessStreamSummary:
    def test_cold_pass(self):
        summary = AccessStreamSummary(MachineSpec.titan_x())
        summary.cold_pass(256 * 1024 * 1024)
        assert summary.total_read_miss_megabytes == 256.0

    def test_repeat_beyond_capacity_misses(self):
        summary = AccessStreamSummary(MachineSpec.titan_x())
        summary.cold_pass(256 * 1024 * 1024)
        summary.repeat_pass(256 * 1024 * 1024)
        assert summary.total_read_miss_megabytes == 512.0

    def test_repeat_within_capacity_free(self):
        summary = AccessStreamSummary(MachineSpec.titan_x())
        summary.cold_pass(1024 * 1024)
        summary.repeat_pass(1024 * 1024)
        assert summary.total_read_miss_megabytes == 1.0

    def test_line_rounding(self):
        summary = AccessStreamSummary(MachineSpec.titan_x())
        summary.cold_pass(33)  # rounds to 2 lines of 32 bytes
        assert summary.cold_bytes == 64


class TestWarp:
    def make_warp(self, width=4, regs=2):
        values = np.arange(width * regs).reshape(width, regs).astype(np.int32)
        return Warp(values)

    def test_shfl_index_gather(self):
        warp = self.make_warp()
        out = warp.shfl_index(np.array([3, 2, 1, 0]), register=0)
        np.testing.assert_array_equal(out, [6, 4, 2, 0])

    def test_shfl_up(self):
        warp = self.make_warp()
        out = warp.shfl_up(register=0, delta=1)
        np.testing.assert_array_equal(out, [0, 0, 2, 4])  # low lanes keep own

    def test_shfl_down(self):
        warp = self.make_warp()
        out = warp.shfl_down(register=1, delta=2)
        np.testing.assert_array_equal(out, [5, 7, 5, 7])

    def test_broadcast(self):
        warp = self.make_warp()
        out = warp.broadcast(source_lane=2, register=1)
        np.testing.assert_array_equal(out, [5, 5, 5, 5])

    def test_shuffle_counts(self):
        warp = self.make_warp()
        warp.shfl_up(0, 1)
        warp.broadcast(0, 0)
        assert warp.shuffle_count == 2

    def test_out_of_range_lane(self):
        warp = self.make_warp()
        with pytest.raises(SimulationError):
            warp.shfl_index(np.array([0, 1, 2, 4]), 0)

    def test_registers_unchanged_by_shuffle(self):
        warp = self.make_warp()
        snapshot = warp.registers.copy()
        warp.shfl_up(0, 3)
        np.testing.assert_array_equal(warp.registers, snapshot)


class TestSharedMemory:
    def test_budget_enforced(self):
        shared = SharedMemory(capacity_bytes=64)
        shared.allocate("a", (8,), np.int32)  # 32 bytes
        with pytest.raises(SimulationError, match="exhausted"):
            shared.allocate("b", (16,), np.int32)  # 64 more

    def test_duplicate_name(self):
        shared = SharedMemory(capacity_bytes=1024)
        shared.allocate("a", (4,), np.int32)
        with pytest.raises(SimulationError, match="twice"):
            shared.allocate("a", (4,), np.int32)

    def test_traffic_counters(self):
        shared = SharedMemory(capacity_bytes=1024)
        shared.record_write(3)
        shared.record_read(2)
        assert shared.write_count == 3
        assert shared.read_count == 2


class TestScheduler:
    def test_atomic_counter(self):
        counter = AtomicCounter()
        assert [counter.fetch_increment() for _ in range(3)] == [0, 1, 2]

    def test_runs_all_blocks(self):
        done = []

        def make(i):
            def body():
                yield BlockYield.PROGRESS
                done.append(i)

            return body

        scheduler = GridScheduler(max_resident=2, seed=1)
        stats = scheduler.run([make(i) for i in range(7)])
        assert sorted(done) == list(range(7))
        assert stats.blocks_run == 7
        assert stats.max_resident == 2

    def test_deadlock_detection(self):
        def stuck():
            while True:
                yield BlockYield.WAITING

        scheduler = GridScheduler(max_resident=2, seed=0, deadlock_rounds=10)
        with pytest.raises(SimulationError, match="deadlock"):
            scheduler.run([stuck, stuck])

    def test_waiting_then_progress_no_deadlock(self):
        state = {"released": False}

        def releaser():
            for _ in range(5):
                yield BlockYield.PROGRESS
            state["released"] = True

        def waiter():
            while not state["released"]:
                yield BlockYield.WAITING
            yield BlockYield.PROGRESS

        scheduler = GridScheduler(max_resident=2, seed=0, deadlock_rounds=50)
        stats = scheduler.run([waiter, releaser])
        assert state["released"]
        assert stats.wait_steps > 0

    def test_deterministic_given_seed(self):
        def noisy(i, log):
            def body():
                for _ in range(3):
                    log.append(i)
                    yield BlockYield.PROGRESS

            return body

        log_a: list = []
        GridScheduler(max_resident=3, seed=42).run([noisy(i, log_a) for i in range(5)])
        log_b: list = []
        GridScheduler(max_resident=3, seed=42).run([noisy(i, log_b) for i in range(5)])
        assert log_a == log_b

    def test_invalid_residency(self):
        with pytest.raises(SimulationError):
            GridScheduler(max_resident=0).run([])


class TestThreadBlock:
    def test_create_distributes_values(self):
        values = np.arange(32, dtype=np.int32)
        block = ThreadBlock.create(values, block_size=16, warp_size=4, shared_capacity=1024)
        assert block.values_per_thread == 2
        np.testing.assert_array_equal(block.values(), values)
        np.testing.assert_array_equal(block.registers[3], [6, 7])

    def test_indivisible_chunk_rejected(self):
        with pytest.raises(SimulationError):
            ThreadBlock.create(np.arange(30), 16, 4, 1024)

    def test_block_not_multiple_of_warp(self):
        with pytest.raises(SimulationError):
            ThreadBlock.create(np.arange(28), 14, 4, 1024)

    def test_warp_view_shares_storage(self):
        block = ThreadBlock.create(np.arange(16, dtype=np.int64), 16, 4, 1024)
        warp = block.warp(1)
        warp.registers[0, 0] = 99
        assert block.registers[4, 0] == 99
