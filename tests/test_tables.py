"""Tables 2 and 3: paper numbers vs reproduced accounting.

These are the tightest quantitative checks in the reproduction: memory
usage and L2 misses are pure accounting, so the model should land
within a few percent of every cell the paper prints.
"""

import pytest

from repro.eval.tables import (
    TABLE_INPUT_WORDS,
    table2_memory_usage,
    table3_l2_misses,
)

# Table 2 of the paper, megabytes (order -> code -> value).
PAPER_TABLE2 = {
    1: {"PLR": 623.5, "CUB": 623.5, "SAM": 622.5, "Scan": 1135.5, "Alg3": 895.8, "Rec": 638.5, "memcpy": 621.5},
    2: {"PLR": 623.5, "CUB": 623.5, "SAM": 622.5, "Scan": 3188.8, "Alg3": 911.8, "Rec": 654.5, "memcpy": 621.5},
    3: {"PLR": 624.5, "CUB": 623.5, "SAM": 622.5, "Scan": 6278.9, "Alg3": 927.8, "Rec": 670.5, "memcpy": 621.5},
}

# Table 3 of the paper, megabytes of L2 read misses.
PAPER_TABLE3 = {
    1: {"PLR": 256.1, "CUB": 256.5, "SAM": 256.2, "Scan": 512.3, "Alg3": 550.6, "Rec": 528.3},
    2: {"PLR": 256.2, "CUB": 256.1, "SAM": 256.6, "Scan": 1537.1, "Alg3": 591.3, "Rec": 545.3},
    3: {"PLR": 256.4, "CUB": 256.2, "SAM": 256.8, "Scan": 3074.1, "Alg3": 632.0, "Rec": 562.5},
}


@pytest.fixture(scope="module")
def table2():
    cells = table2_memory_usage()
    return {(c.code, c.order): c.megabytes for c in cells}


@pytest.fixture(scope="module")
def table3():
    cells = table3_l2_misses()
    return {(c.code, c.order): c.megabytes for c in cells}


def test_table_input_is_2_26():
    """'the largest input that all six recurrence codes support, i.e.,
    67,108,864 words.'"""
    assert TABLE_INPUT_WORDS == 2**26 == 67_108_864


@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("code", ["PLR", "CUB", "SAM", "Scan", "Alg3", "Rec", "memcpy"])
def test_table2_cells_within_two_percent(table2, order, code):
    got = table2[(code, order)]
    expected = PAPER_TABLE2[order][code]
    assert got == pytest.approx(expected, rel=0.02), (code, order)


@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("code", ["PLR", "CUB", "SAM", "Scan", "Alg3", "Rec"])
def test_table3_cells_within_two_percent(table3, order, code):
    got = table3[(code, order)]
    expected = PAPER_TABLE3[order][code]
    assert got == pytest.approx(expected, rel=0.02), (code, order)


class TestTable2Structure:
    def test_plr_within_three_mb_of_memcpy(self, table2):
        """'PLR between two and three more megabytes, i.e., less than
        half a percent.'"""
        for order in (1, 2, 3):
            extra = table2[("PLR", order)] - table2[("memcpy", order)]
            assert 1.0 < extra < 4.0

    def test_scan_data_blowup(self, table2):
        """'it requires 1024 MB for first-order, 3072 MB for
        second-order, and 6144 MB for third-order recurrences' of data
        alone."""
        context = 109.5
        for order, data_mb in ((1, 1024), (2, 3072), (3, 6144)):
            assert table2[("Scan", order)] >= data_mb + context

    def test_alg3_heaviest_filter_code(self, table2):
        for order in (1, 2, 3):
            assert table2[("Alg3", order)] > table2[("Rec", order)]


class TestTable3Structure:
    def test_single_pass_codes_near_cold_misses(self, table3):
        """'PLR, CUB, and SAM only incur a tiny amount of additional
        L2-cache read misses (less than one megabyte or 0.3%).'"""
        for order in (1, 2, 3):
            for code in ("PLR", "CUB", "SAM"):
                assert 256.0 <= table3[(code, order)] < 257.0, (code, order)

    def test_scan_multiples(self, table3):
        """'the two, six, and twelve times higher cold misses.'"""
        assert table3[("Scan", 1)] / 256 == pytest.approx(2, rel=0.01)
        assert table3[("Scan", 2)] / 256 == pytest.approx(6, rel=0.01)
        assert table3[("Scan", 3)] / 256 == pytest.approx(12, rel=0.01)

    def test_alg3_rec_read_input_twice(self, table3):
        """'Alg3 and Rec are not communication efficient as they read
        the input data twice.'"""
        for order in (1, 2, 3):
            assert table3[("Alg3", order)] > 2 * 256
            assert table3[("Rec", order)] > 2 * 256
