"""Phase 2: carry propagation, look-back algebra, final correction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nnacci import carry_transition_matrix
from repro.core.reference import serial_recurrence
from repro.core.signature import Signature
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase1 import phase1
from repro.plr.phase2 import (
    apply_global_correction,
    local_carries,
    lookback_combine,
    phase2,
    propagate_carries,
    transition_matrix,
)


def pipeline(text: str, values: np.ndarray, m: int) -> np.ndarray:
    sig = Signature.parse(text)
    table = CorrectionFactorTable.build(sig, m, values.dtype)
    chunks = -(-values.size // m)
    padded = np.zeros(chunks * m, dtype=values.dtype)
    padded[: values.size] = values
    partial = phase1(padded, table, 1)
    return phase2(partial, table).reshape(-1)[: values.size]


PAPER_INPUT = np.array(
    [3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16, 17, -18, 19, -20, 21, -22],
    dtype=np.int32,
)


class TestPaperExample:
    def test_final_result(self):
        out = pipeline("(1: 2, -1)", PAPER_INPUT, 8)
        expected = [3, 2, 6, 4, 9, 6, 12, 8, 15, 10, 18, 12, 21, 14, 24, 16, 27, 18, 30, 20]
        np.testing.assert_array_equal(out, expected)

    def test_phase2_carry_hop_from_paper(self):
        # "the global carries of the third chunk are 24 and 16, based on
        # the global carries from the first chunk (12 and 8) and the
        # local carries from the second chunk (44 and 40)".
        sig = Signature.parse("(1: 2, -1)")
        table = CorrectionFactorTable.build(sig, 8, np.int32)
        matrix = transition_matrix(table)
        base_global = np.array([8, 12], dtype=np.int32)  # [w7, w6] of chunk 1
        chunk2_local = np.array([40, 44], dtype=np.int32)
        out = lookback_combine(base_global, [chunk2_local], matrix)
        np.testing.assert_array_equal(out, [16, 24])


class TestTransitionMatrix:
    @pytest.mark.parametrize("text,m", [("(1: 1)", 4), ("(1: 2, -1)", 8), ("(1: 1, 1, 1)", 16)])
    def test_matches_first_principles(self, text, m):
        sig = Signature.parse(text)
        table = CorrectionFactorTable.build(sig, m, np.int64)
        from_table = transition_matrix(table)
        from_scratch = carry_transition_matrix(sig, m)
        np.testing.assert_array_equal(from_table, np.array(from_scratch))

    def test_dtype_follows_table(self):
        table = CorrectionFactorTable.build(Signature.parse("(1: 0.5)"), 8, np.float32)
        assert transition_matrix(table).dtype == np.float32


class TestLocalCarries:
    def test_extraction_order(self):
        partial = np.arange(24).reshape(2, 12)
        carries = local_carries(partial, 3)
        # most recent first: positions 11, 10, 9 of each chunk
        np.testing.assert_array_equal(carries[0], [11, 10, 9])
        np.testing.assert_array_equal(carries[1], [23, 22, 21])

    def test_order_equals_chunk_size(self):
        partial = np.arange(8).reshape(2, 4)
        carries = local_carries(partial, 4)
        np.testing.assert_array_equal(carries[0], [3, 2, 1, 0])

    def test_order_too_large(self):
        with pytest.raises(ValueError):
            local_carries(np.zeros((2, 4)), 5)


class TestPropagation:
    def test_first_chunk_passthrough(self):
        locals_ = np.array([[5, 7], [1, 1]], dtype=np.int64)
        matrix = np.zeros((2, 2), dtype=np.int64)
        out = propagate_carries(locals_, matrix)
        np.testing.assert_array_equal(out[0], [5, 7])
        np.testing.assert_array_equal(out[1], [1, 1])

    def test_affine_chain(self):
        locals_ = np.array([[1], [1], [1]], dtype=np.int64)
        matrix = np.array([[2]], dtype=np.int64)
        out = propagate_carries(locals_, matrix)
        np.testing.assert_array_equal(out.reshape(-1), [1, 3, 7])

    def test_empty(self):
        out = propagate_carries(np.zeros((0, 2), dtype=np.int64), np.eye(2, dtype=np.int64))
        assert out.shape == (0, 2)


class TestLookbackEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.integers(2, 12),
        distance=st.integers(1, 11),
        seed=st.integers(0, 999),
    )
    def test_hopping_equals_sequential(self, chunks, distance, seed):
        """Combining over any look-back distance equals the serial spine.

        This is the correctness core of the pipelined Phase 2: the
        global carries of chunk c computed from *any* earlier base
        chunk plus intervening locals must equal the sequentially
        propagated value.
        """
        distance = min(distance, chunks - 1)
        gen = np.random.default_rng(seed)
        sig = Signature.parse("(1: 2, -1)")
        table = CorrectionFactorTable.build(sig, 8, np.int64)
        matrix = transition_matrix(table)
        locals_ = gen.integers(-9, 9, (chunks, 2)).astype(np.int64)
        sequential = propagate_carries(locals_, matrix)
        target = chunks - 1
        base = target - distance
        hopped = lookback_combine(
            sequential[base], list(locals_[base + 1 : target + 1]), matrix
        )
        np.testing.assert_array_equal(hopped, sequential[target])

    def test_zero_hops_is_identity_plus_local(self):
        matrix = np.array([[3]], dtype=np.int64)
        out = lookback_combine(np.array([5], dtype=np.int64), [], matrix)
        np.testing.assert_array_equal(out, [5])


class TestEndToEnd:
    @pytest.mark.parametrize(
        "text", ["(1: 1)", "(1: 2, -1)", "(1: 0, 1)", "(1: 3, -3, 1)", "(1: 1, 1)"]
    )
    def test_matches_serial(self, text, rng):
        values = rng.integers(-30, 30, 200).astype(np.int64)
        out = pipeline(text, values, 16)
        sig = Signature.parse(text)
        np.testing.assert_array_equal(out, serial_recurrence(values, list(sig.feedback)))

    def test_single_chunk_input(self, rng):
        values = rng.integers(-9, 9, 8).astype(np.int32)
        out = pipeline("(1: 1)", values, 8)
        np.testing.assert_array_equal(out, np.cumsum(values, dtype=np.int32))

    def test_float_within_tolerance(self, rng):
        values = rng.standard_normal(300).astype(np.float32)
        out = pipeline("(1: 0.8)", values, 32)
        expected = serial_recurrence(values, [0.8])
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_apply_global_correction_leaves_chunk0(self, rng):
        sig = Signature.parse("(1: 1)")
        table = CorrectionFactorTable.build(sig, 4, np.int64)
        partial = rng.integers(0, 9, (3, 4)).astype(np.int64)
        carries = propagate_carries(local_carries(partial, 1), transition_matrix(table))
        out = apply_global_correction(partial, carries, table)
        np.testing.assert_array_equal(out[0], partial[0])
