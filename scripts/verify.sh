#!/usr/bin/env bash
# The repo's verification gate: tests, serve smoke, perf regression.
#
# Run from the repository root:
#
#   scripts/verify.sh
#
# Three stages, in order of increasing cost; the script stops at the
# first failure:
#
#   1. tier-1 pytest  — the full default suite (correctness; the
#      native-marked tests skip themselves when no C compiler exists).
#   2. serve self-test — a live ephemeral server, one pass over the
#      reply contract (7 checks); repeated with --backend native when
#      a C compiler is available, and with --backend auto against a
#      freshly tuned calibration table (quick sweep into a temp dir,
#      so the developer's real table is never touched).
#   3. bench gate      — re-runs the committed BENCH_parallel.json
#      benchmark and fails on a >25% per-row slowdown.
#
# If stage 3 fails because of an *intentional* performance change,
# refresh the baseline and commit it:
#
#   PYTHONPATH=src python -m repro.cli bench \
#       --compare BENCH_parallel.json --tolerance 25 --update-baseline
#
# Set PLR_SKIP_BENCH_GATE=1 to skip stage 3 (e.g. on shared hardware
# too noisy for wall-clock comparisons; the speedup metric tolerates
# uniform slowness but not contention that hits one backend only).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

echo "== stage 1/3: tier-1 test suite =="
python -m pytest -x -q

echo "== stage 2/3: serve self-test =="
python -m repro.cli serve --self-test
if command -v cc >/dev/null 2>&1 || command -v gcc >/dev/null 2>&1; then
    echo "== stage 2/3: serve self-test (native backend) =="
    python -m repro.cli serve --self-test --backend native
else
    echo "== stage 2/3: native serve self-test SKIPPED (no C compiler) =="
fi
echo "== stage 2/3: quick tune + serve self-test (auto backend) =="
PLR_TUNE_TMP="$(mktemp -d)"
trap 'rm -rf "$PLR_TUNE_TMP"' EXIT
PLR_TUNE_DB="$PLR_TUNE_TMP/tuning.json" python -m repro.cli tune --quick
PLR_TUNE_DB="$PLR_TUNE_TMP/tuning.json" python -m repro.cli tune --show
PLR_TUNE_DB="$PLR_TUNE_TMP/tuning.json" \
    python -m repro.cli serve --self-test --backend auto

if [ "${PLR_SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "== stage 3/3: bench gate SKIPPED (PLR_SKIP_BENCH_GATE=1) =="
else
    echo "== stage 3/3: perf-regression gate =="
    python -m repro.cli bench --compare BENCH_parallel.json --tolerance 25
fi

echo "verify: all stages passed"
