"""Figure 10: PLR throughput with and without optimizations.

Paper claim: the factor optimizations help on all eleven recurrences —
by only ~3% on the higher-order prefix sums (where only shared-memory
buffering applies) and by more than 2x on the two-stage low-pass
filter (decay truncation plus buffering).

The measured side times the executable solver with optimizations on
vs off on the filter where the effect is semantic (decay truncation
shortens real correction loops), plus the generated-C kernels both
ways.
"""

import pytest

from benchmarks.conftest import figure_input, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.eval.figures import figure10_throughputs
from repro.eval.report import render_figure10
from repro.plr.optimizer import OptimizationConfig
from repro.plr.solver import PLRSolver

LOW_PASS_2 = Recurrence.parse("(0.04: 1.6, -0.64)")


def test_fig10_modeled_bars(capsys):
    bars = figure10_throughputs()
    with capsys.disabled():
        print()
        print(render_figure10(bars))


@pytest.mark.benchmark(group="fig10-optimizations")
def test_fig10_lowpass2_optimized(benchmark):
    values = figure_input(LOW_PASS_2)
    solver = PLRSolver(LOW_PASS_2)
    run_and_verify(benchmark, solver.solve, values, LOW_PASS_2)


@pytest.mark.benchmark(group="fig10-optimizations")
def test_fig10_lowpass2_unoptimized(benchmark):
    values = figure_input(LOW_PASS_2)
    solver = PLRSolver(LOW_PASS_2, optimization=OptimizationConfig.disabled())
    run_and_verify(benchmark, solver.solve, values, LOW_PASS_2)


@pytest.mark.benchmark(group="fig10-optimizations")
def test_fig10_c_kernel_optimized(benchmark):
    values = figure_input(LOW_PASS_2)
    kernel = PLRCompiler().compile(LOW_PASS_2, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, LOW_PASS_2)


@pytest.mark.benchmark(group="fig10-optimizations")
def test_fig10_c_kernel_unoptimized(benchmark):
    values = figure_input(LOW_PASS_2)
    compiler = PLRCompiler(optimization=OptimizationConfig.disabled())
    kernel = compiler.compile(LOW_PASS_2, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, LOW_PASS_2)
