"""Figure 7: 2-stage low-pass filter throughput.

Paper claim: PLR ~1.88x Rec at 1 GB inputs.
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(0.04: 1.6, -0.64)")


def test_fig7_modeled_series(capsys):
    print_modeled_figure("fig7", capsys)


@pytest.mark.benchmark(group="fig7-lowpass2")
def test_fig7_plr_solver(benchmark):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig7-lowpass2")
def test_fig7_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig7-lowpass2")
def test_fig7_rec_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("Rec")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
