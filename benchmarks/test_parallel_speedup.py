"""The multicore acceptance gate: >= 2x on 4 cores for a k=2 filter.

Deliberately the workload docs/parallel.md says multicore is *for*:
a second-order float recurrence at n = 2^22, where the per-element
correction is real compute rather than pure memory traffic.  Excluded
from default runs twice over (the ``bench`` marker and testpaths);
select with ``pytest benchmarks/test_parallel_speedup.py -m bench``.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.core.validation import compare_results
from repro.plr.solver import PLRSolver

SIGNATURE = "(1: 1.5, -0.6)"
N = 1 << 22
WORKERS = 4
REPEAT = 3


def best_of(fn, repeat=REPEAT):
    best, result = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.bench
@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"needs >= {WORKERS} cores to demonstrate a speedup",
)
def test_process_backend_speedup_at_4_workers():
    values = np.random.default_rng(20180324).standard_normal(N).astype(np.float64)

    single = PLRSolver(SIGNATURE)
    plan = single.plan_for(N)
    # Many chunks per worker so slab imbalance stays negligible.
    if plan.num_chunks < 8 * WORKERS:
        chunk = 1 << 12
        plan = dataclasses.replace(
            plan, chunk_size=chunk, values_per_thread=1, num_chunks=-(-N // chunk)
        )
    single_s, expected = best_of(
        lambda: single.solve(values, plan=plan, dtype=np.float64)
    )

    sharded = PLRSolver(SIGNATURE, backend="process", workers=WORKERS)
    sharded.solve(values[: 1 << 16], dtype=np.float64)  # warm pool-independent caches
    process_s, got = best_of(
        lambda: sharded.solve(values, plan=plan, dtype=np.float64)
    )

    assert compare_results(got, expected).ok
    speedup = single_s / process_s
    assert speedup >= 2.0, (
        f"process backend {process_s * 1e3:.0f} ms vs single "
        f"{single_s * 1e3:.0f} ms — speedup x{speedup:.2f} < 2.0"
    )
