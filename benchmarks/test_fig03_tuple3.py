"""Figure 3: three-tuple prefix-sum throughput.

Paper claim: PLR ~17% faster than the best prior code at large n;
the advantage is smaller than on 2-tuples (non-power-of-two period).
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(1: 0, 0, 1)")


def test_fig3_modeled_series(capsys):
    print_modeled_figure("fig3", capsys)


@pytest.mark.benchmark(group="fig3-tuple3")
def test_fig3_plr_solver(benchmark):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig3-tuple3")
def test_fig3_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig3-tuple3")
def test_fig3_sam_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("SAM")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
