"""Figure 1: standard prefix-sum throughput.

Paper claim: PLR, CUB, and SAM all reach memory-copy throughput on
large inputs; Scan delivers about half; SAM leads on small inputs.
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(1: 1)")


def test_fig1_modeled_series(capsys):
    print_modeled_figure("fig1", capsys)


@pytest.mark.benchmark(group="fig1-prefix-sum")
def test_fig1_plr_solver(benchmark, capsys):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig1-prefix-sum")
def test_fig1_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig1-prefix-sum")
def test_fig1_cub_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("CUB")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)


@pytest.mark.benchmark(group="fig1-prefix-sum")
def test_fig1_sam_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("SAM")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
