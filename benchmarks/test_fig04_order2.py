"""Figure 4: second-order prefix-sum throughput.

Paper claim: SAM > PLR > CUB; SAM ~50% ahead of PLR; PLR barely
ahead of CUB (which runs the whole scan twice).
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(1: 2, -1)")


def test_fig4_modeled_series(capsys):
    print_modeled_figure("fig4", capsys)


@pytest.mark.benchmark(group="fig4-order2")
def test_fig4_plr_solver(benchmark):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig4-order2")
def test_fig4_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig4-order2")
def test_fig4_sam_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("SAM")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
