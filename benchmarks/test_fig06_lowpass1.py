"""Figure 6: 1-stage low-pass filter throughput.

Paper claim: PLR reaches memcpy throughput at large n; Rec wins
below ~1M elements (its re-read still fits the 2 MB L2), PLR above;
Alg3 trails everywhere (it filters in both directions).
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(0.2: 0.8)")


def test_fig6_modeled_series(capsys):
    print_modeled_figure("fig6", capsys)


@pytest.mark.benchmark(group="fig6-lowpass1")
def test_fig6_plr_solver(benchmark):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig6-lowpass1")
def test_fig6_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig6-lowpass1")
def test_fig6_rec_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("Rec")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
