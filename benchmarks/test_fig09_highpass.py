"""Figure 9: high-pass filter throughput (1/2/3 stages).

Paper claim: only PLR and Scan support multi-coefficient feed-forward
filters at all; throughput sits a consistent ~17% below the matching
low-pass filters, independent of the order — the FIR map stage (2) is
cheap relative to the recursive stage.
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

STAGES = {
    1: Recurrence.parse("(0.9, -0.9: 0.8)"),
    2: Recurrence.parse("(0.81, -1.62, 0.81: 1.6, -0.64)"),
    3: Recurrence.parse("(0.729, -2.187, 2.187, -0.729: 2.4, -1.92, 0.512)"),
}


def test_fig9_modeled_series(capsys):
    for fid in ("fig9.1", "fig9.2", "fig9.3"):
        print_modeled_figure(fid, capsys)


@pytest.mark.parametrize("stages", [1, 2, 3])
@pytest.mark.benchmark(group="fig9-highpass")
def test_fig9_plr_solver(benchmark, stages):
    recurrence = STAGES[stages]
    values = figure_input(recurrence)
    solver = PLRSolver(recurrence)
    run_and_verify(benchmark, solver.solve, values, recurrence)


@pytest.mark.benchmark(group="fig9-highpass")
def test_fig9_scan_baseline_one_stage(benchmark):
    from repro.baselines import make_code

    recurrence = STAGES[1]
    values = figure_input(recurrence)
    code = make_code("Scan")
    run_and_verify(
        benchmark, lambda v: code.compute(v, recurrence), values, recurrence
    )
