"""Throughput of the serving layer's adaptive micro-batching.

The point of :mod:`repro.serve`: N pipelined clients sharing a
signature should be coalesced into a handful of grouped engine passes,
so the per-request cost approaches the batched engine's, not the
per-request loop's.  Two claims, asserted:

* a pipelined stream of B requests is flushed in far fewer than B
  engine passes (``serve.flushes`` counts the coalescing), and
* every reply is bit-correct against the serial reference even at full
  pipeline depth.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_serve_throughput.py -q``
(benchmarks are excluded from the tier-1 ``tests/`` run by pytest's
``testpaths``).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core import parse_signature
from repro.core.reference import serial_full
from repro.obs import MetricsRegistry
from repro.serve import PLRServer, ServeClient, ServeConfig

B = 64
N = 2048
SIGNATURE = "(1: 2, -1)"
PARSED = parse_signature(SIGNATURE)


def _values(seed: int = 20180324) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(-100, 100, size=(B, N)).astype(np.int64)


async def _pipelined_round(server: PLRServer, values: np.ndarray) -> tuple[float, list[dict]]:
    client = await ServeClient.connect(server.address)
    try:
        t0 = time.perf_counter()
        for i in range(B):
            await client.send(
                {"id": i, "signature": SIGNATURE, "values": values[i].tolist()}
            )
        replies = [await client.recv() for _ in range(B)]
        elapsed = time.perf_counter() - t0
    finally:
        await client.close()
    return elapsed, replies


@pytest.mark.serve
def test_pipelined_stream_coalesces_and_stays_correct():
    values = _values()
    expected = serial_full(values[0], PARSED)

    async def run() -> tuple[float, list[dict], dict]:
        metrics = MetricsRegistry()
        server = PLRServer(
            ServeConfig(port=0, max_batch=B, flush_ms=5.0, min_bucket=64),
            metrics=metrics,
        )
        await server.start()
        try:
            # Warm-up round: factor tables, thread pool, allocator.
            await _pipelined_round(server, values)
            elapsed, replies = await _pipelined_round(server, values)
        finally:
            await server.aclose()
        return elapsed, replies, metrics.snapshot()

    elapsed, replies, snapshot = asyncio.run(asyncio.wait_for(run(), timeout=120))

    by_id = {reply["id"]: reply for reply in replies}
    assert len(by_id) == B
    for i in range(B):
        reply = by_id[i]
        assert reply["ok"], reply
        got = np.asarray(reply["output"])
        ref = serial_full(values[i], PARSED, dtype=got.dtype)
        np.testing.assert_array_equal(got, ref)
    np.testing.assert_array_equal(
        np.asarray(by_id[0]["output"]), expected.astype(np.asarray(by_id[0]["output"]).dtype)
    )

    flushes = snapshot["counters"]["serve.flushes"]
    words = B * N
    print(
        f"\nB={B} n={N}: {elapsed * 1e3:.1f} ms pipelined "
        f"({words / elapsed / 1e6:.1f} M words/s) in {flushes} flushes "
        f"for {2 * B} admitted requests"
    )
    # Coalescing is the whole point: far fewer engine passes than
    # requests.  The bound is loose (scheduling jitter can split a
    # stream) but a per-request server would see one flush each.
    assert flushes <= B, f"{flushes} flushes for {2 * B} requests: no coalescing"


@pytest.mark.serve
@pytest.mark.benchmark(group="serve-throughput")
def test_bench_pipelined_stream(benchmark):
    values = _values()

    async def session() -> None:
        metrics = MetricsRegistry()
        server = PLRServer(
            ServeConfig(port=0, max_batch=B, flush_ms=5.0, min_bucket=64),
            metrics=metrics,
        )
        await server.start()
        try:
            await _pipelined_round(server, values)
        finally:
            await server.aclose()

    benchmark(lambda: asyncio.run(asyncio.wait_for(session(), timeout=120)))
