"""Ablations over the design choices DESIGN.md calls out.

The paper motivates several structural decisions without separate
charts; these benchmarks quantify each one in the reproduction:

* **two phases vs Phase 1 all the way up** — Phase 1 alone is
  O(nk log n) work; stopping at m and pipelining Phase 2 is what makes
  the algorithm work-efficient (Section 2.2's first reason);
* **per-thread grain x** — the auto-tuner's trade-off between chunk
  count (waves, carries) and per-chunk overheads;
* **pipeline depth c** — the look-back window: depth 1 serializes
  chunk completion, depth 32 hides it (measured on the functional
  simulator's wait counters);
* **optimization passes individually** — which §3.1 pass buys what on
  a decaying filter.
"""

import numpy as np
import pytest

from repro.core.recurrence import Recurrence
from repro.core.signature import Signature
from repro.gpusim.executor import SimulatedPLR
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import OptimizationConfig
from repro.plr.phase1 import phase1
from repro.plr.phase2 import phase2
from repro.plr.solver import PLRSolver

N = 1 << 19
RECURRENCE = Recurrence.parse("(0.04: 1.6, -0.64)")


def _values(n=N, dtype=np.float32, seed=3):
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return rng.integers(-50, 50, n).astype(dtype)
    return rng.standard_normal(n).astype(dtype)


@pytest.mark.benchmark(group="ablation-two-phases")
def test_two_phase_pipeline(benchmark):
    """The shipped design: Phase 1 to m = 4096, then Phase 2."""
    sig = Signature.parse("(1: 2, -1)")
    values = _values(dtype=np.int32)
    table = CorrectionFactorTable.build(sig, 4096, np.int32)

    def run():
        padded = np.zeros(-(-values.size // 4096) * 4096, np.int32)
        padded[: values.size] = values
        return phase2(phase1(padded, table, 1), table)

    out = benchmark(run)
    assert out.shape[1] == 4096


@pytest.mark.benchmark(group="ablation-two-phases")
def test_phase1_only_all_the_way(benchmark):
    """The ablated design: keep doubling to n (O(nk log n) work).

    Needs a factor table as long as the whole input — exactly the
    overhead ("the larger the chunk size, the more correction factors
    need to be loaded") Phase 2 exists to avoid.
    """
    sig = Signature.parse("(1: 2, -1)")
    values = _values(dtype=np.int32)
    table = CorrectionFactorTable.build(sig, values.size, np.int32)

    def run():
        return phase1(values.copy(), table, 1)

    out = benchmark(run)
    assert out.shape == (1, values.size)


@pytest.mark.benchmark(group="ablation-grain")
@pytest.mark.parametrize("x", [1, 2, 4, 8, 11])
def test_grain_sweep(benchmark, x):
    """Throughput vs the per-thread grain x (chunk m = 1024x)."""
    sig = Signature.parse("(1: 1)")
    values = _values(dtype=np.int32)
    table = CorrectionFactorTable.build(sig, 1024 * x, np.int32)

    def run():
        m = 1024 * x
        padded = np.zeros(-(-values.size // m) * m, np.int32)
        padded[: values.size] = values
        return phase2(phase1(padded, table, x), table)

    out = benchmark(run)
    benchmark.extra_info["x"] = x
    assert out.size >= values.size


@pytest.mark.benchmark(group="ablation-lookback")
@pytest.mark.parametrize("depth", [1, 4, 32])
def test_lookback_depth(benchmark, depth):
    """Pipeline depth on the functional simulator: deeper look-back
    means fewer busy-wait steps for the same schedule."""
    machine = MachineSpec.small_test_gpu()
    rec = Recurrence.parse("(1: 1)")
    values = _values(n=4000, dtype=np.int32)

    def run():
        sim = SimulatedPLR(rec, machine, seed=7, max_lookback=depth)
        return sim.run(values)

    result = benchmark(run)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["wait_steps"] = result.schedule_wait_steps
    expected = np.cumsum(values, dtype=np.int32)
    np.testing.assert_array_equal(result.output, expected)


@pytest.mark.benchmark(group="ablation-passes")
@pytest.mark.parametrize(
    "label,config",
    [
        ("all-on", OptimizationConfig()),
        ("no-truncation", OptimizationConfig(truncate_decayed=False)),
        ("no-buffering", OptimizationConfig(buffer_in_shared=False)),
        ("all-off", OptimizationConfig.disabled()),
    ],
)
def test_optimization_passes(benchmark, label, config):
    """Individual §3.1 passes on the 2-stage low-pass filter.

    In the executable solver only decay truncation changes the work
    actually done (the others shape generated code and the cost
    model); the modeled effect of each is in Figure 10.
    """
    values = _values()
    solver = PLRSolver(RECURRENCE, optimization=config)
    out = benchmark(solver.solve, values)
    benchmark.extra_info["config"] = label
    reference = PLRSolver(RECURRENCE).solve(values)
    np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)
