"""Figure 8: 3-stage low-pass filter throughput.

Paper claim: every code slows with order; PLR's lead over Rec
narrows to ~1.58x (higher-order recurrences cost PLR more).
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(0.008: 2.4, -1.92, 0.512)")


def test_fig8_modeled_series(capsys):
    print_modeled_figure("fig8", capsys)


@pytest.mark.benchmark(group="fig8-lowpass3")
def test_fig8_plr_solver(benchmark):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig8-lowpass3")
def test_fig8_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig8-lowpass3")
def test_fig8_alg3_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("Alg3")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
