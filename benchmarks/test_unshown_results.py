"""The paper's "(not shown)" results: 4-tuples and 4th-order sums.

Section 6.1.2: "PLR's 4-tuple throughput (not shown) is slightly
higher than its 3-tuple throughput" (power-of-two tuple sizes enable
extra optimizations) while "CUB's and SAM's throughputs consistently
decrease with larger tuple sizes".

Section 6.1.3: "on fourth-order prefix sums (not shown) it outperforms
[CUB] even more ... for order 4 about 33%" (SAM's shrinking lead).

Both are assertions on the model here plus host-side timings of the
executable paths.
"""

import numpy as np
import pytest

from benchmarks.conftest import figure_input, run_and_verify
from repro.baselines.base import Workload
from repro.baselines.registry import make_code
from repro.core.recurrence import Recurrence
from repro.core.signature import Signature
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import MachineSpec
from repro.plr.solver import PLRSolver

TITAN = MachineSpec.titan_x()
MODEL = CostModel(TITAN)
LARGE = 2**30


def modeled(code_name: str, recurrence: Recurrence, n: int = LARGE) -> float:
    code = make_code(code_name)
    workload = Workload(recurrence, n)
    return MODEL.throughput(n, code.traffic(workload, TITAN))


def test_plr_4tuple_beats_3tuple_model(capsys):
    tuple3 = Recurrence(Signature.tuple_prefix_sum(3))
    tuple4 = Recurrence(Signature.tuple_prefix_sum(4))
    t3 = modeled("PLR", tuple3)
    t4 = modeled("PLR", tuple4)
    assert t4 > t3  # power-of-two period: conditional adds, no modulo
    with capsys.disabled():
        print(f"\nPLR 3-tuple {t3 / 1e9:.1f} vs 4-tuple {t4 / 1e9:.1f} G words/s")


def test_cub_sam_decrease_with_tuple_size_model():
    for code in ("CUB", "SAM"):
        curve = [
            modeled(code, Recurrence(Signature.tuple_prefix_sum(s)))
            for s in (2, 3, 4)
        ]
        assert curve[0] > curve[1] > curve[2], code


def test_order4_model_claims(capsys):
    order4 = Recurrence(Signature.higher_order_prefix_sum(4))
    plr = modeled("PLR", order4)
    cub = modeled("CUB", order4)
    sam = modeled("SAM", order4)
    # "it outperforms [CUB] even more": the margin at order 4 exceeds
    # the order-3 margin.
    order3 = Recurrence(Signature.higher_order_prefix_sum(3))
    assert plr / cub > modeled("PLR", order3) / modeled("CUB", order3)
    # "for order 4 about 33%": SAM's lead keeps shrinking.
    assert sam / plr == pytest.approx(1.33, abs=0.18)
    assert sam / plr < modeled("SAM", order3) / modeled("PLR", order3)
    with capsys.disabled():
        print(
            f"\norder-4: SAM {sam / 1e9:.1f}  PLR {plr / 1e9:.1f}  "
            f"CUB {cub / 1e9:.1f} G words/s"
        )


@pytest.mark.benchmark(group="unshown-4tuple")
def test_plr_4tuple_host(benchmark):
    recurrence = Recurrence(Signature.tuple_prefix_sum(4))
    values = figure_input(recurrence)
    solver = PLRSolver(recurrence)
    run_and_verify(benchmark, solver.solve, values, recurrence)


@pytest.mark.benchmark(group="unshown-order4")
def test_plr_order4_host(benchmark):
    recurrence = Recurrence(Signature.higher_order_prefix_sum(4))
    values = figure_input(recurrence)
    solver = PLRSolver(recurrence)
    run_and_verify(benchmark, solver.solve, values, recurrence)


@pytest.mark.benchmark(group="unshown-order4")
def test_sam_order4_host(benchmark):
    recurrence = Recurrence(Signature.higher_order_prefix_sum(4))
    values = figure_input(recurrence)
    code = make_code("SAM")
    run_and_verify(
        benchmark, lambda v: code.compute(v, recurrence), values, recurrence
    )
