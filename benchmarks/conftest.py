"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one table or figure from the paper:

* the *modeled* Titan X throughput series is computed with the
  calibrated cost model over the paper's full 2^14..2^30 sweep and
  printed in a layout meant to be read next to the paper's chart;
* the *measured* part times this library's executable path (the numpy
  PLR solver and/or the generated-C kernel) on this host at a reduced
  size, and verifies the result against the serial reference — the
  reproduction's analogue of the paper's per-run validation.

Absolute numbers differ from the paper's GPU, by design; the series
shapes and ratios are asserted in tests/test_paper_claims.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.validation import assert_valid
from repro.eval.figures import figure_definitions
from repro.eval.harness import run_experiment
from repro.eval.report import render_figure

MEASURE_N = 1 << 20
"""Input size for on-host measurement (the model covers 2^14..2^30)."""


def figure_input(recurrence: Recurrence, n: int = MEASURE_N) -> np.ndarray:
    rng = np.random.default_rng(20180324)
    if recurrence.is_integer:
        return rng.integers(-100, 100, size=n).astype(np.int32)
    return rng.standard_normal(n).astype(np.float32)


def print_modeled_figure(fid: str, capsys) -> None:
    """Render the full modeled series for one figure."""
    definition = figure_definitions()[fid]
    result = run_experiment(definition, validate=False)
    with capsys.disabled():
        print()
        print(render_figure(result))


def run_and_verify(benchmark, solve, values, recurrence) -> None:
    out = benchmark(solve, values)
    expected = serial_full(values[: 1 << 16], recurrence.signature)
    assert_valid(np.asarray(out)[: 1 << 16], expected, context="benchmark")
    benchmark.extra_info["n"] = int(values.size)
    benchmark.extra_info["recurrence"] = str(recurrence.signature)


@pytest.fixture(scope="session")
def figure_defs():
    return figure_definitions()


@pytest.fixture(scope="session", autouse=True)
def paper_reproduction_report(request):
    """Print the complete modeled evaluation once per benchmark session.

    Ensures `pytest benchmarks/ --benchmark-only` regenerates every
    figure and table of the paper even though the per-figure printer
    tests are skipped in benchmark-only mode.
    """
    yield
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    from repro.eval.figures import figure10_throughputs
    from repro.eval.report import render_figure10, render_table
    from repro.eval.tables import table2_memory_usage, table3_l2_misses

    lines = ["", "=" * 72, "Reproduced evaluation (modeled Titan X)", "=" * 72]
    for fid, definition in sorted(figure_definitions().items()):
        result = run_experiment(definition, validate=False)
        lines.append(render_figure(result))
        lines.append("")
    lines.append(render_figure10(figure10_throughputs()))
    lines.append("")
    lines.append(render_table(table2_memory_usage(), "Table 2: Total GPU memory usage (MB), n=2^26"))
    lines.append("")
    lines.append(render_table(table3_l2_misses(), "Table 3: L2 read misses (MB), n=2^26"))
    text = "\n".join(lines)
    if capmanager is not None:
        with capmanager.global_and_fixture_disabled():
            print(text)
    else:  # pragma: no cover - capture plugin always present under pytest
        print(text)
