"""Figure 5: third-order prefix-sum throughput.

Paper claim: ordering unchanged, but SAM's lead shrinks to ~38%
and PLR's margin over CUB grows.
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(1: 3, -3, 1)")


def test_fig5_modeled_series(capsys):
    print_modeled_figure("fig5", capsys)


@pytest.mark.benchmark(group="fig5-order3")
def test_fig5_plr_solver(benchmark):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig5-order3")
def test_fig5_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig5-order3")
def test_fig5_cub_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("CUB")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
