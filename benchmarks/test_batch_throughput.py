"""Throughput of the batched execution engine vs a per-request loop.

The point of :mod:`repro.batch`: B requests sharing one signature pay
Python dispatch, planning, and the factor-table lookup once per *pass*
instead of once per *request*, and the phase kernels vectorize across
the batch axis.  The headline claim (asserted, not just printed): at
B = 64 the vectorized pass is at least 5x the throughput of solving the
same requests one at a time with :class:`~repro.plr.solver.PLRSolver`.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_batch_throughput.py -q``
(benchmarks are excluded from the tier-1 ``tests/`` run by pytest's
``testpaths``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.batch import BatchEngine, BatchRequest, BatchSolver
from repro.plr.solver import PLRSolver, clear_factor_cache

B = 64
# Two chunks per row under the titan_x plan (m = 1024), so the batched
# Phase 2 carry spine is exercised, not just the embarrassingly
# parallel Phase 1.  The batched win shrinks as n grows (per-chunk
# numpy work amortizes the per-request overhead the batch eliminates);
# at this size the measured advantage is ~9x on a contended CI host,
# comfortably above the asserted 5x.
N = 2048
SIGNATURE = "(1: 2, -1)"


def _batch(dtype=np.int32, seed=20180324) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(-100, 100, size=(B, N)).astype(dtype)


def _best_of(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_batched_pass_at_least_5x_per_request_loop():
    values = _batch()
    batch_solver = BatchSolver(SIGNATURE)
    per_request = PLRSolver(SIGNATURE)

    # Warm the factor cache and the numpy allocator for both paths so
    # the comparison measures steady-state throughput, not first-touch.
    clear_factor_cache()
    batch_out = batch_solver.solve(values)
    loop_out = np.stack([per_request.solve(values[i]) for i in range(B)])
    np.testing.assert_array_equal(batch_out, loop_out)

    batched_s = _best_of(lambda: batch_solver.solve(values))
    looped_s = _best_of(
        lambda: [per_request.solve(values[i]) for i in range(B)]
    )
    speedup = looped_s / batched_s
    words = B * N
    print(
        f"\nB={B} n={N}: loop {looped_s * 1e3:.1f} ms "
        f"({words / looped_s / 1e6:.1f} M words/s), "
        f"batched {batched_s * 1e3:.1f} ms "
        f"({words / batched_s / 1e6:.1f} M words/s) -> {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"batched pass only {speedup:.2f}x the per-request loop "
        f"(looped {looped_s * 1e3:.1f} ms, batched {batched_s * 1e3:.1f} ms)"
    )


def test_engine_overhead_stays_small():
    """The full engine path (planner + grouping + outcome assembly)
    keeps most of the raw vectorized win at B = 64."""
    values = _batch()
    requests = [BatchRequest(SIGNATURE, values[i], tag=i) for i in range(B)]
    per_request = PLRSolver(SIGNATURE)

    engine = BatchEngine()
    outcomes = engine.execute(requests)  # warm-up + correctness
    for i, outcome in enumerate(outcomes):
        np.testing.assert_array_equal(outcome.output, per_request.solve(values[i]))

    engine_s = _best_of(lambda: BatchEngine().execute(requests))
    looped_s = _best_of(
        lambda: [per_request.solve(values[i]) for i in range(B)]
    )
    speedup = looped_s / engine_s
    print(f"\nengine path: {speedup:.1f}x the per-request loop")
    assert speedup >= 5.0


@pytest.mark.benchmark(group="batch-throughput")
def test_bench_batched_pass(benchmark):
    values = _batch()
    solver = BatchSolver(SIGNATURE)
    solver.solve(values)  # warm the factor cache
    out = benchmark(lambda: solver.solve(values))
    assert out.shape == (B, N)


@pytest.mark.benchmark(group="batch-throughput")
def test_bench_per_request_loop(benchmark):
    values = _batch()
    solver = PLRSolver(SIGNATURE)
    solver.solve(values[0])  # warm the factor cache
    out = benchmark(lambda: [solver.solve(values[i]) for i in range(B)])
    assert len(out) == B
