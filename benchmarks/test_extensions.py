"""Benchmarks for the future-work extensions.

Not part of the paper's evaluation — these cover the implemented
future-work features so their costs are visible: streaming overhead vs
one-shot solving, batched-2D throughput vs row-at-a-time, and the
semiring solver vs its serial oracle.
"""

import numpy as np
import pytest

from repro.plr.nd import solve_batch, summed_area_table
from repro.plr.semiring import MaxPlus, semiring_serial, semiring_solve
from repro.plr.solver import PLRSolver
from repro.plr.streaming import StreamingSolver


@pytest.mark.benchmark(group="ext-streaming")
def test_streaming_blocks(benchmark):
    rng = np.random.default_rng(0)
    total = rng.standard_normal(1 << 20).astype(np.float32)
    blocks = np.split(total, 16)

    def run():
        stream = StreamingSolver("(0.2: 0.8)")
        return stream.push_many(blocks)

    out = benchmark(run)
    one_shot = StreamingSolver("(0.2: 0.8)").push(total)
    np.testing.assert_allclose(out, one_shot, rtol=1e-4, atol=1e-5)


@pytest.mark.benchmark(group="ext-streaming")
def test_streaming_one_shot_reference(benchmark):
    rng = np.random.default_rng(0)
    total = rng.standard_normal(1 << 20).astype(np.float32)
    solver = PLRSolver("(0.2: 0.8)")
    benchmark(solver.solve, total)


@pytest.mark.benchmark(group="ext-batched-2d")
def test_batched_rows(benchmark):
    rng = np.random.default_rng(1)
    image = rng.standard_normal((256, 4096)).astype(np.float32)
    out = benchmark(solve_batch, image, "(0.2: 0.8)")
    assert out.shape == image.shape


@pytest.mark.benchmark(group="ext-batched-2d")
def test_row_at_a_time(benchmark):
    rng = np.random.default_rng(1)
    image = rng.standard_normal((256, 4096)).astype(np.float32)
    solver = PLRSolver("(0.2: 0.8)")

    def run():
        return np.stack([solver.solve(row) for row in image])

    out = benchmark(run)
    np.testing.assert_allclose(
        out, solve_batch(image, "(0.2: 0.8)"), rtol=1e-4, atol=1e-5
    )


@pytest.mark.benchmark(group="ext-2d-sat")
def test_summed_area_table(benchmark):
    rng = np.random.default_rng(2)
    image = rng.integers(0, 255, (1024, 1024)).astype(np.int64)
    sat = benchmark(summed_area_table, image)
    assert sat[-1, -1] == image.sum()


@pytest.mark.benchmark(group="ext-semiring")
def test_maxplus_parallel(benchmark):
    rng = np.random.default_rng(3)
    scores = rng.normal(0, 2, 1 << 18)
    out = benchmark(semiring_solve, scores, [-1.0, -3.0], MaxPlus(), 256)
    assert out.shape == scores.shape


@pytest.mark.benchmark(group="ext-semiring")
def test_maxplus_serial_oracle(benchmark):
    rng = np.random.default_rng(3)
    scores = rng.normal(0, 2, 1 << 14)  # smaller: python-loop oracle
    out = benchmark(semiring_serial, scores, [-1.0, -3.0], MaxPlus())
    assert out.shape == scores.shape
