"""Table 2: total GPU memory usage at 67,108,864 words.

Paper claims reproduced by the accounting model (asserted to within 2%
in tests/test_tables.py): PLR/CUB/SAM sit within ~3 MB of the bare
memcpy program; Scan's matrix encoding needs 1024/3072/6144 MB of data
alone; Alg3 allocates 274-306 MB extra, Rec 17-49 MB.

The benchmark times the accounting itself (it runs a full plan +
factor-table build per cell, so it is not free) and prints the table.
"""

import pytest

from repro.eval.report import render_table
from repro.eval.tables import table2_memory_usage


def test_table2_print(capsys):
    cells = table2_memory_usage()
    with capsys.disabled():
        print()
        print(render_table(cells, "Table 2: Total GPU memory usage (MB), n=2^26"))


@pytest.mark.benchmark(group="table2-memory")
def test_table2_accounting(benchmark):
    cells = benchmark(table2_memory_usage)
    assert len(cells) == 3 * 7  # six codes + memcpy, three orders
