"""Table 3: L2 read misses at 67,108,864 words.

Paper claims reproduced by the accounting model (asserted to within 2%
in tests/test_tables.py): PLR/CUB/SAM incur essentially only the cold
input misses (256 MB); Scan misses 2x/6x/12x; Alg3 and Rec read the
input twice plus per-order overhead.

The benchmark also exercises the *mechanistic* cache model: a real
set-associative L2 simulation at small scale demonstrating the
re-read-beyond-capacity effect the closed-form accounting relies on.
"""

import pytest

from repro.eval.report import render_table
from repro.eval.tables import table3_l2_misses
from repro.gpusim.l2cache import L2Cache


def test_table3_print(capsys):
    cells = table3_l2_misses()
    with capsys.disabled():
        print()
        print(render_table(cells, "Table 3: L2 read misses (MB), n=2^26"))


@pytest.mark.benchmark(group="table3-l2")
def test_table3_accounting(benchmark):
    cells = benchmark(table3_l2_misses)
    assert len(cells) == 3 * 6


@pytest.mark.benchmark(group="table3-l2")
def test_table3_mechanism_cache_simulation(benchmark):
    """Streaming re-read beyond capacity misses again (Alg3/Rec)."""

    def run() -> tuple[int, int]:
        cache = L2Cache(capacity_bytes=64 * 1024, line_bytes=32)
        span = 512 * 1024  # 8x the capacity
        for _ in range(2):
            for address in range(0, span, 32):
                cache.read(address)
        double_pass = cache.read_misses
        cache = L2Cache(capacity_bytes=64 * 1024, line_bytes=32)
        for address in range(0, 32 * 1024, 32):  # fits: second pass free
            cache.read(address)
        for address in range(0, 32 * 1024, 32):
            cache.read(address)
        resident_pass = cache.read_misses
        return double_pass, resident_pass

    double_pass, resident_pass = benchmark(run)
    assert double_pass == 2 * 512 * 1024 // 32
    assert resident_pass == 32 * 1024 // 32
