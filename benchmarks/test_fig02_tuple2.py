"""Figure 2: two-tuple prefix-sum throughput.

Paper claim: PLR outperforms CUB and SAM by ~30% on large inputs
(a single scalar order-2 recurrence vs vector/interleaved scans).
"""

import pytest

from benchmarks.conftest import figure_input, print_modeled_figure, run_and_verify
from repro.codegen.compiler import PLRCompiler
from repro.core.recurrence import Recurrence
from repro.plr.solver import PLRSolver

RECURRENCE = Recurrence.parse("(1: 0, 1)")


def test_fig2_modeled_series(capsys):
    print_modeled_figure("fig2", capsys)


@pytest.mark.benchmark(group="fig2-tuple2")
def test_fig2_plr_solver(benchmark):
    values = figure_input(RECURRENCE)
    solver = PLRSolver(RECURRENCE)
    run_and_verify(benchmark, solver.solve, values, RECURRENCE)


@pytest.mark.benchmark(group="fig2-tuple2")
def test_fig2_generated_c_kernel(benchmark):
    values = figure_input(RECURRENCE)
    kernel = PLRCompiler().compile(RECURRENCE, n=values.size, backend="c").kernel
    run_and_verify(benchmark, kernel, values, RECURRENCE)


@pytest.mark.benchmark(group="fig2-tuple2")
def test_fig2_cub_baseline(benchmark):
    from repro.baselines import make_code

    values = figure_input(RECURRENCE)
    code = make_code("CUB")
    run_and_verify(benchmark, lambda v: code.compute(v, RECURRENCE), values, RECURRENCE)
